package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"grouptravel/internal/replicate"
	"grouptravel/internal/store"
	"grouptravel/internal/telemetry"
)

// This file is the primary half of log shipping: GET /cities/{city}/wal
// ?from={seq} serves every committed record after the follower's resume
// point, straight from the city's log files — and, when the resume point
// has fallen behind the compaction horizon (the records now live only in
// the snapshot), the sealed snapshot plus the log suffix. The frames go
// out byte-for-byte as they sit in the log. A follower's own /wal
// endpoint serves the same way, so replicas can cascade.
//
// Beyond the classic one-shot response the endpoint is commit-driven:
//
//   - ?wait={dur} long-polls: a caught-up request blocks until a commit
//     lands (the city's commitNotify wakes it) or the wait elapses, then
//     answers one ordinary batch. Steady-state lag stops being bounded by
//     the follower's poll interval.
//   - ?stream=1 holds the connection open: the handler writes the initial
//     batch (snapshot handoff included when needed), then flushes frames
//     via http.Flusher as commits land, with zero-length heartbeat frames
//     every ?hb={dur} so proxies and stall detectors see a live wire. The
//     server may end the stream at any time — compaction moving the log
//     out from under the reader, the stream-life cap protecting the LRU,
//     a promotion — and the client simply reconnects; at-least-once
//     delivery and sequence-idempotent apply make the cut invisible.
//
// The stream deliberately never forces a city load: a resident city
// serves live (its appender's sequence counter is the authoritative
// head), an unloaded one serves cold from its sealed on-disk state —
// tailing followers polling every city must not defeat the LRU cap by
// faulting everything in. Cold cities answer long-polls too (the
// notifier outlives residency), but never hold a push stream: the
// one-shot answer ends the response and the client's reconnect loop
// paces itself on the wait.

// errStreamAhead: the requested resume point is beyond this log's head —
// the caller has records this server never wrote. Divergence, not lag.
var errStreamAhead = errors.New("ahead of log head")

// errStreamBusy: compaction kept moving the files under the reader for
// every retry. Transient; the follower's next poll retries.
var errStreamBusy = errors.New("log rotating; retry")

const (
	// maxWALWait caps ?wait= so a stuck client cannot pin a handler (and
	// its city acquisition) forever on a silent city.
	maxWALWait = 5 * time.Minute
	// maxStreamLife caps one push stream's lifetime. The handler holds the
	// city acquired for the stream's whole duration, which blocks LRU
	// eviction; bounding the stream bounds the pin, and the client's
	// reconnect gets a fresh handoff decision (snapshot vs frames) too.
	maxStreamLife = 2 * time.Minute
	// Heartbeat cadence bounds: defaultHeartbeat when the client does not
	// choose, clamped into [minHeartbeat, maxHeartbeat] when it does.
	defaultHeartbeat = 2 * time.Second
	minHeartbeat     = 100 * time.Millisecond
	maxHeartbeat     = 30 * time.Second
)

// walStreamParams are the commit-driven knobs of one /wal request.
type walStreamParams struct {
	wait   time.Duration // long-poll budget; 0 = answer immediately
	stream bool          // hold the connection open, push frames
	hb     time.Duration // heartbeat cadence on an idle stream
	fid    string        // follower id for the replication-slot table
}

// maxFollowerIDLen bounds ?fid= so a hostile handshake cannot grow the
// slot table's keys (and its metric labels) without bound.
const maxFollowerIDLen = 200

// parseStreamParams reads wait/stream/hb/fid; on a bad value it writes
// the 400 and reports !ok. Durations must be strictly positive: a
// zero or negative ?wait= is a contradiction ("long-poll for no time"),
// not a degenerate one-shot — omitting the parameter is how a caller
// asks for the immediate answer — and letting it through would make
// `wait=0s` and `wait=` behave identically by accident rather than
// contract.
func parseStreamParams(w http.ResponseWriter, r *http.Request) (walStreamParams, bool) {
	p := walStreamParams{hb: defaultHeartbeat}
	q := r.URL.Query()
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "bad wait %q", v)
			return p, false
		}
		p.wait = min(d, maxWALWait)
	}
	switch v := q.Get("stream"); v {
	case "", "0", "false":
	case "1", "true":
		p.stream = true
	default:
		writeErr(w, http.StatusBadRequest, "bad stream %q", v)
		return p, false
	}
	if v := q.Get("hb"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "bad hb %q", v)
			return p, false
		}
		p.hb = min(max(d, minHeartbeat), maxHeartbeat)
	}
	if v := q.Get("fid"); v != "" {
		if len(v) > maxFollowerIDLen {
			writeErr(w, http.StatusBadRequest, "fid longer than %d bytes", maxFollowerIDLen)
			return p, false
		}
		p.fid = v
	}
	return p, true
}

// handleWAL routes one stream request: live when the city is resident,
// cold (disk-only) when it is not. "No WAL configured" is 501, never
// 409 — a follower must be able to tell a misconfigured primary apart
// from real divergence.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("city")
	if key == "" {
		key = s.defaultCity
	}
	if !s.reg.Has(key) {
		writeErr(w, http.StatusNotFound, "unknown city %q", key)
		return
	}
	from, ok := parseFrom(w, r)
	if !ok {
		return
	}
	p, ok := parseStreamParams(w, r)
	if !ok {
		return
	}
	// A cold city cannot hold a push stream (nothing resident fires its
	// appender), so stream requests degrade to a bounded long-poll: the
	// one-shot answer ends the response and the client reconnects — which
	// self-paces its effective poll to the wait below.
	coldWait := p.wait
	if p.stream && coldWait == 0 {
		coldWait = 2 * p.hb
	}
	deadline := time.Now().Add(coldWait)
	for {
		if c, release, ok := s.reg.AcquireIfLoaded(key); ok {
			defer release()
			c.State.handleWALStream(w, r, from, p)
			return
		}
		if s.snapshotDir == "" {
			writeErr(w, http.StatusNotImplemented,
				"city %q has no write-ahead log (replication requires -snapshot-dir)", key)
			return
		}
		// Cold: the city's state is sealed on disk (eviction compacted and
		// closed it, or it was never touched). A load racing this read only
		// appends past what we serve; the density checks catch rotations.
		batch, cached, err := s.coldBatch(key, from)
		if err != nil {
			writeStreamResult(w, from, nil, err)
			return
		}
		caughtUp := batch.Snapshot == nil && len(batch.Frames) == 0
		remaining := time.Until(deadline)
		if !caughtUp || coldWait <= 0 || remaining <= 0 {
			s.stampBatch(batch)
			_ = replicate.WriteStream(w, batch)
			if !cached {
				s.fleetVersion.Add(1) // the /cities listing reports cold heads
			}
			return
		}
		// Caught up with wait budget left: block on the city's notifier —
		// a load-and-commit on this key wakes us — then re-run the whole
		// resolution (the city may be resident now).
		_, ch := s.notifier(key).await()
		select {
		case <-ch:
			s.metrics.streams.wakeups.Inc()
		case <-time.After(remaining):
		case <-r.Context().Done():
			return
		}
	}
}

// coldBatch assembles a non-resident city's one-shot batch, answering
// caught-up polls from the stat-signature cache (cached=true) so a
// follower fleet tailing cold cities costs three stats per poll, not a
// snapshot parse.
func (s *Server) coldBatch(key string, from int64) (batch *replicate.Batch, cached bool, err error) {
	sig := coldSig(s.snapshotDir, key)
	if h, hit := s.coldHeads.Load(key); hit {
		if ch := h.(coldHead); ch.sig == sig && from == ch.last {
			return &replicate.Batch{PrimarySeq: ch.last, PrimaryWALBytes: ch.walBytes}, true, nil
		}
	}
	batch, err = streamFrom(s.snapshotDir, key, from, nil)
	if err != nil {
		return nil, false, err
	}
	// The signature was taken before the read: if the files changed in
	// between, the stale signature just misses the cache next poll.
	s.coldHeads.Store(key, coldHead{sig: sig, last: batch.PrimarySeq, walBytes: batch.PrimaryWALBytes})
	return batch, false, nil
}

// coldHead caches the last-served head of a non-resident city, keyed by
// its files' stat signature.
type coldHead struct {
	sig            coldSignature
	last, walBytes int64
}

// coldSignature fingerprints the three on-disk files cheaply (mtime +
// size; -1/-1 when absent).
type coldSignature struct {
	snapMod, snapSize, walMod, walSize, pendMod, pendSize int64
}

func coldSig(dir, key string) coldSignature {
	stat := func(path string) (int64, int64) {
		fi, err := os.Stat(path)
		if err != nil {
			return -1, -1
		}
		return fi.ModTime().UnixNano(), fi.Size()
	}
	var sig coldSignature
	sig.snapMod, sig.snapSize = stat(store.SnapshotPath(dir, key))
	sig.walMod, sig.walSize = stat(store.WALPath(dir, key))
	sig.pendMod, sig.pendSize = stat(store.PendingWALPath(dir, key))
	return sig
}

// handleWALStream serves the stream for a resident city: push stream,
// long-poll, or the classic one-shot.
func (cs *cityState) handleWALStream(w http.ResponseWriter, r *http.Request, from int64, p walStreamParams) {
	if cs.wal == nil {
		writeErr(w, http.StatusNotImplemented,
			"city %q has no write-ahead log (replication requires -snapshot-dir)", cs.key)
		return
	}
	if p.stream {
		cs.serveWALPush(w, r, from, p)
		return
	}
	if p.wait > 0 && from == cs.wal.LastSeq() {
		// Caught up: block until a commit wakes us or the wait elapses,
		// then fall through to the ordinary one-shot answer. (from > head
		// skips the wait — that is divergence and 409s immediately.)
		cs.awaitCommit(r.Context(), from, p.wait)
	}
	batch, err := streamFrom(cs.snapDir, cs.key, from, func() (int64, int64) {
		return cs.wal.LastSeq(), cs.wal.Stats().Bytes
	})
	cs.stampBatch(batch)
	writeStreamResult(w, from, batch, err)
}

// stampBatch adds the node's replication term to an outgoing batch.
func (cs *cityState) stampBatch(b *replicate.Batch) {
	if b != nil && cs.epochInfo != nil {
		b.Epoch, b.EpochPrimary = cs.epochInfo()
	}
}

// awaitCommit blocks until the city's applied sequence passes from, the
// wait elapses, or the request dies. The head/channel pair from await()
// makes the check race-free: a commit landing between the sequence read
// and the select either advanced the head already or will close ch.
func (cs *cityState) awaitCommit(ctx context.Context, from int64, wait time.Duration) {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		head, ch := cs.notify.await()
		if head > from || cs.wal.LastSeq() > from {
			return
		}
		select {
		case <-ch:
			cs.streams.wakeups.Inc()
		case <-timer.C:
			return
		case <-ctx.Done():
			return
		}
	}
}

// serveWALPush is the push mode: one initial batch (snapshot handoff
// included when the resume point is behind the compaction horizon), then
// frames flushed as commits land. Mid-stream the response can only carry
// raw frames — headers and the snapshot section are spent — so any
// condition that needs them again (compaction moved the log past the
// cursor, a snapshot handoff installed, the life cap) simply ends the
// stream; the client reconnects into a fresh decision. A replication
// term change ends the stream too: the term was stamped into this
// response's headers at the top and cannot be restated, and after a
// promotion or fence the consumer must re-handshake against the node's
// new role rather than keep draining a response that claims the old one.
//
// A ?fid= handshake feeds the server's slot table: the initial batch and
// every flushed run advance the follower's recorded position, heartbeats
// refresh its liveness — which is what lets compaction hold for exactly
// the followers that are alive and behind.
func (cs *cityState) serveWALPush(w http.ResponseWriter, r *http.Request, from int64, p walStreamParams) {
	hb := p.hb
	headFn := func() (int64, int64) { return cs.wal.LastSeq(), cs.wal.Stats().Bytes }
	startTerm := int64(0)
	if cs.epochInfo != nil {
		startTerm, _ = cs.epochInfo()
	}
	batch, err := streamFrom(cs.snapDir, cs.key, from, headFn)
	if err != nil {
		writeStreamResult(w, from, nil, err)
		return
	}
	cs.stampBatch(batch)
	fl := telemetry.FlusherFor(w)
	if fl == nil {
		// Nothing in the writer stack can flush, so no push. Degrade the
		// way a cold city does: when caught up, hold a bounded long-poll
		// first so the client's clean-end reconnect self-paces on ~2×hb
		// instead of hot-looping one-shots, then answer the batch.
		if batch.Snapshot == nil && len(batch.Frames) == 0 {
			cs.awaitCommit(r.Context(), from, 2*hb)
			if batch, err = streamFrom(cs.snapDir, cs.key, from, headFn); err != nil {
				writeStreamResult(w, from, nil, err)
				return
			}
			cs.stampBatch(batch)
		}
		writeStreamResult(w, from, batch, nil)
		return
	}
	cs.streams.open.Add(1)
	defer cs.streams.open.Add(-1)
	if err := replicate.WriteStream(w, batch); err != nil {
		return
	}
	fl.Flush()
	cursor := from
	if batch.Snapshot != nil && batch.SnapshotSeq > cursor {
		cursor = batch.SnapshotSeq
	}
	if n := len(batch.Frames); n > 0 {
		cursor = batch.Frames[n-1].Seq
	}
	cs.streams.frames.Add(int64(len(batch.Frames)))
	if cs.slots != nil {
		cs.slots.update(p.fid, cs.key, cursor, cs.wal.LastSeq())
	}

	tail := newWALTail(cs.snapDir, cs.key)
	hbTimer := time.NewTimer(hb)
	defer hbTimer.Stop()
	life := time.NewTimer(maxStreamLife)
	defer life.Stop()
	ctx := r.Context()
	for {
		head, ch := cs.notify.await()
		if cs.epochInfo != nil {
			if term, _ := cs.epochInfo(); term != startTerm {
				// Promotion or fence mid-stream: end it. Promote bumps the
				// term before sealing (each seal wakes this notifier), so a
				// consumer can never be handed a frame committed after the
				// seal under the old term's headers.
				return
			}
		}
		if head > cursor || cs.wal.LastSeq() > cursor {
			frames, ok := tail.next(cursor)
			if !ok {
				// The records past cursor left the live segment (compaction
				// or a snapshot install). End cleanly; the reconnect gets
				// the snapshot-vs-frames decision in a fresh response.
				return
			}
			if len(frames) > 0 {
				for _, fr := range frames {
					if _, err := w.Write(store.EncodeFrame(fr.Payload)); err != nil {
						return
					}
				}
				fl.Flush()
				cursor = frames[len(frames)-1].Seq
				cs.streams.frames.Add(int64(len(frames)))
				if cs.slots != nil {
					cs.slots.update(p.fid, cs.key, cursor, cs.wal.LastSeq())
				}
				resetTimer(hbTimer, hb)
				continue
			}
			// Head advanced but the segment shows nothing new past cursor
			// (a rotation is mid-flight): wait for the next wake instead of
			// spinning on the file.
		}
		select {
		case <-ch:
			cs.streams.wakeups.Inc()
		case <-hbTimer.C:
			if _, err := w.Write(replicate.HeartbeatFrame[:]); err != nil {
				return
			}
			fl.Flush()
			cs.streams.heartbeats.Inc()
			if cs.slots != nil {
				cs.slots.touch(p.fid, cs.key, cs.wal.LastSeq())
			}
			hbTimer.Reset(hb)
		case <-life.C:
			return
		case <-ctx.Done():
			return
		}
	}
}

// resetTimer is the stop-drain-reset dance for a timer that may have
// fired while we were writing.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// walTail is a push stream's incremental reader over the city's live log
// segment: it remembers the byte offset its last read ended at, so each
// commit wakeup reads only the new suffix instead of re-scanning the
// whole log (which would make a busy stream O(log²) over its lifetime).
// A rotation invalidates the offset; next() detects that as a sequence
// mismatch and falls back to one full scan of the (fresh, small)
// segment — and reports !ok when the records the cursor needs are no
// longer in the segment at all.
type walTail struct {
	path string
	off  int64 // -1: offset unknown, full scan first
}

func newWALTail(dir, key string) *walTail {
	return &walTail{path: store.WALPath(dir, key), off: -1}
}

// next returns the dense run of frames directly after cursor that the
// live segment holds, or ok=false when the segment cannot serve them
// (the stream must end and the client re-resolve). An empty result with
// ok=true means nothing new is visible yet — wait for the next wake. A
// torn last frame (the appender mid-write) just ends this read early;
// the offset parks before it and the next read retries.
func (t *walTail) next(cursor int64) ([]store.WALFrame, bool) {
	if t.off >= 0 {
		frames, off, err := store.ReadWALFramesAt(t.path, t.off)
		if err == nil && len(frames) > 0 && frames[0].Seq == cursor+1 && denseFrom(frames, cursor+1) {
			t.off = off
			return frames, true
		}
		if err == nil && len(frames) == 0 {
			// Nothing new at the remembered offset. Either the appender
			// has not reached the file yet (mid-frame) or the file rotated
			// under us; the full scan below settles it.
			sameEnd := off == t.off
			frames, off, err = store.ReadWALFramesAt(t.path, 0)
			if err != nil {
				return nil, false
			}
			out := framesAfter(frames, cursor)
			if len(out) == 0 && sameEnd {
				return nil, true // genuinely nothing new yet
			}
			return t.settle(out, off, cursor)
		}
		// Error or sequence mismatch: rescan from the top.
	}
	frames, off, err := store.ReadWALFramesAt(t.path, 0)
	if err != nil {
		return nil, false
	}
	return t.settle(framesAfter(frames, cursor), off, cursor)
}

// settle validates a full-scan result against the cursor: dense directly
// after it (serve), empty (wait), or gapped (the stream must end).
func (t *walTail) settle(out []store.WALFrame, off, cursor int64) ([]store.WALFrame, bool) {
	if len(out) == 0 {
		t.off = off
		return nil, true
	}
	if out[0].Seq != cursor+1 || !denseFrom(out, cursor+1) {
		return nil, false
	}
	t.off = off
	return out, true
}

// parseFrom reads the resume-point query parameter; on a bad value it
// writes the 400 and reports !ok.
func parseFrom(w http.ResponseWriter, r *http.Request) (int64, bool) {
	v := r.URL.Query().Get("from")
	if v == "" {
		return 0, true
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		writeErr(w, http.StatusBadRequest, "bad from %q", v)
		return 0, false
	}
	return n, true
}

// writeStreamResult maps a streamFrom result onto the response; true
// means a batch was written.
func writeStreamResult(w http.ResponseWriter, from int64, batch *replicate.Batch, err error) bool {
	switch {
	case errors.Is(err, errStreamAhead):
		writeErr(w, http.StatusConflict, "follower at seq %d is ahead of this log", from)
		return false
	case errors.Is(err, errStreamBusy):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return false
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return false
	}
	_ = replicate.WriteStream(w, batch) // a cut connection is the client's retry
	return true
}

// streamFrom assembles one stream batch: all committed records with
// sequence > from. The log files are read without locks while the
// appender, and possibly a compaction, keep running — a torn tail just
// ends the committed prefix, and the races that matter (a rotation or
// compaction landing between two file reads) all surface as a sequence
// gap, which is detected and retried rather than ever shipped.
func streamFrom(dir, key string, from int64, head func() (int64, int64)) (*replicate.Batch, error) {
	for attempt := 0; ; attempt++ {
		batch, err := tryCollect(dir, key, from, head)
		if err != nil {
			return nil, err
		}
		if batch != nil {
			return batch, nil
		}
		if attempt >= 5 {
			return nil, errStreamBusy
		}
		time.Sleep(time.Duration(1<<attempt) * time.Millisecond)
	}
}

// tryCollect makes one read pass; nil batch with nil error means "raced
// a rotation, retry".
func tryCollect(dir, key string, from int64, head func() (int64, int64)) (*replicate.Batch, error) {
	var (
		frames         []store.WALFrame
		raw            []byte
		snapSeq        int64
		snapRead       bool
		last, walBytes int64
	)
	readSnap := func() error {
		if snapRead {
			return nil
		}
		var err error
		raw, snapSeq, err = store.ReadSnapshotRaw(dir, key)
		if err != nil {
			return fmt.Errorf("snapshot handoff: %w", err)
		}
		snapRead = true
		return nil
	}
	if head != nil {
		last, walBytes = head()
		if from > last {
			return nil, errStreamAhead
		}
		if from == last {
			// Caught up: the steady-state poll answers from the sequence
			// counter alone, without reading (or parsing) a byte of log.
			return &replicate.Batch{PrimarySeq: last, PrimaryWALBytes: walBytes}, nil
		}
	}
	frames, err := store.CollectWALFrames(dir, key)
	if err != nil {
		return nil, err
	}
	if !strictlyAscending(frames) {
		return nil, nil // two reads straddled a rotation
	}
	if head == nil {
		// Cold head: the snapshot watermark and the last frame on disk.
		if err := readSnap(); err != nil {
			return nil, err
		}
		last = snapSeq
		for _, fr := range frames {
			walBytes += fr.WireLen()
			if fr.Seq > last {
				last = fr.Seq
			}
		}
		if from > last {
			return nil, errStreamAhead
		}
		if from == last {
			return &replicate.Batch{PrimarySeq: last, PrimaryWALBytes: walBytes}, nil
		}
	}
	batch := &replicate.Batch{PrimarySeq: last, PrimaryWALBytes: walBytes}
	lo := last + 1 // an empty log: everything lives in the snapshot
	if len(frames) > 0 {
		lo = frames[0].Seq
	}
	if from+1 >= lo {
		out := framesAfter(frames, from)
		if !denseFrom(out, from+1) {
			return nil, nil
		}
		batch.Frames = out
		return batch, nil
	}
	// The records right after `from` are no longer in the log: they were
	// folded into the snapshot by a compaction. Hand the snapshot off and
	// ship the suffix beyond its watermark.
	if err := readSnap(); err != nil {
		return nil, err
	}
	if raw == nil || snapSeq < from || snapSeq+1 < lo {
		// No snapshot (or one too old to bridge the gap): a compaction is
		// mid-flight — its rotation already sealed the log but its
		// snapshot has not landed. Retry.
		return nil, nil
	}
	out := framesAfter(frames, snapSeq)
	if !denseFrom(out, snapSeq+1) {
		return nil, nil
	}
	batch.Snapshot, batch.SnapshotSeq = raw, snapSeq
	batch.Frames = out
	return batch, nil
}

// framesAfter returns the suffix with sequence > from.
func framesAfter(frames []store.WALFrame, from int64) []store.WALFrame {
	for i, fr := range frames {
		if fr.Seq > from {
			return frames[i:]
		}
	}
	return nil
}

func strictlyAscending(frames []store.WALFrame) bool {
	for i := 1; i < len(frames); i++ {
		if frames[i].Seq <= frames[i-1].Seq {
			return false
		}
	}
	return true
}

// denseFrom: the frames are exactly start, start+1, ... — primaries issue
// dense sequences, so a hole means the read raced a rotation and the
// batch would skip committed records.
func denseFrom(frames []store.WALFrame, start int64) bool {
	for i, fr := range frames {
		if fr.Seq != start+int64(i) {
			return false
		}
	}
	return true
}
