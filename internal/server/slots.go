package server

import (
	"sort"
	"sync"
	"time"

	"grouptravel/internal/telemetry"
)

// Replication slots make the primary fan-out-aware. Each follower that
// opens a push stream with a ?fid= handshake gets one slot per city,
// tracking the last sequence shipped to it and when the stream last
// proved itself alive (frames or heartbeats). The slot table feeds three
// consumers: /healthz (the operator's who-is-behind view), /metrics
// (gt_replication_follower_lag), and compaction — which holds off while
// a live slot still needs records the snapshot rewrite would fold away,
// so a briefly-lagging follower keeps streaming frames instead of being
// bounced through a full snapshot handoff.
//
// Slots are an optimization, never a correctness gate: a dropped or
// never-registered follower recovers through the ordinary compaction
// handoff (snapshot + suffix). That is what licenses the deadlines —
// a dead follower's slot is collected after slotStaleAfter without being
// fed, and a live-but-stuck one stops holding compaction after
// slotHoldDeadline.

const (
	// slotStaleAfter collects slots whose stream stopped feeding them.
	// Heartbeats touch the slot on the stream's hb cadence (default 2s),
	// so a live stream — even fully caught up and idle — refreshes well
	// inside this window.
	slotStaleAfter = 10 * time.Second
	// slotHoldDeadline caps how long one lagging slot can hold compaction
	// before it is dropped (its follower then resyncs via handoff).
	slotHoldDeadline = 30 * time.Second
)

type slotKey struct{ follower, city string }

type slot struct {
	seq       int64     // last sequence shipped to this follower
	lastSeen  time.Time // last frame or heartbeat written to its stream
	holdSince time.Time // zero unless currently holding a compaction
	lag       *telemetry.Gauge
}

// slotTable is the per-process registry of follower stream positions.
type slotTable struct {
	mu    sync.Mutex
	slots map[slotKey]*slot
	reg   *telemetry.Registry
	now   func() time.Time // injectable for deadline tests
}

func newSlotTable(reg *telemetry.Registry) *slotTable {
	return &slotTable{slots: make(map[slotKey]*slot), reg: reg, now: time.Now}
}

// update records frames shipped to a follower: its position advances to
// seq and the slot is marked alive. head is the city's current log head,
// for the lag gauge.
func (t *slotTable) update(follower, city string, seq, head int64) {
	if follower == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := slotKey{follower: follower, city: city}
	s := t.slots[k]
	if s == nil {
		s = &slot{}
		if t.reg != nil {
			s.lag = t.reg.Gauge("gt_replication_follower_lag",
				"Records between the primary's log head and this follower's stream position.",
				"follower", follower, "city", city)
		}
		t.slots[k] = s
	}
	if seq > s.seq {
		s.seq = seq
	}
	s.lastSeen = t.now()
	if s.lag != nil {
		s.lag.Set(max(head-s.seq, 0))
	}
}

// touch refreshes a slot's liveness without moving its position — the
// heartbeat path of an idle stream.
func (t *slotTable) touch(follower, city string, head int64) {
	if follower == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.slots[slotKey{follower: follower, city: city}]; ok {
		s.lastSeen = t.now()
		if s.lag != nil {
			s.lag.Set(max(head-s.seq, 0))
		}
	}
}

// drop removes a follower's slot for one city (its stream ended).
// The position is deliberately kept until staleness collects it: the
// follower usually reconnects within a heartbeat, and dropping the slot
// at every stream rotation would open a compaction window exactly when
// the follower is mid-reconnect. Kept for symmetry and tests.
func (t *slotTable) drop(follower, city string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.slots[slotKey{follower: follower, city: city}]; ok {
		if s.lag != nil {
			s.lag.Set(0)
		}
		delete(t.slots, slotKey{follower: follower, city: city})
	}
}

// hold reports whether a compaction of city should wait: true while a
// live slot's position is behind head (the records it still needs would
// be folded into the snapshot). Dead slots are collected here, and a slot
// that has held compaction past slotHoldDeadline is dropped — its
// follower pays one snapshot handoff instead of pinning the log forever.
func (t *slotTable) hold(city string, head int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	holding := false
	for k, s := range t.slots {
		if k.city != city {
			continue
		}
		if now.Sub(s.lastSeen) > slotStaleAfter {
			if s.lag != nil {
				s.lag.Set(0)
			}
			delete(t.slots, k)
			continue
		}
		if s.seq >= head {
			s.holdSince = time.Time{}
			continue
		}
		if s.holdSince.IsZero() {
			s.holdSince = now
		} else if now.Sub(s.holdSince) > slotHoldDeadline {
			if s.lag != nil {
				s.lag.Set(0)
			}
			delete(t.slots, k)
			continue
		}
		holding = true
	}
	return holding
}

// slotHealth is one follower-city row of the /healthz replication view.
type slotHealth struct {
	Follower  string `json:"follower"`
	City      string `json:"city"`
	Seq       int64  `json:"seq"`
	AgeMillis int64  `json:"ageMillis"`
	Holding   bool   `json:"holdingCompaction,omitempty"`
}

func (t *slotTable) snapshot() []slotHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.slots) == 0 {
		return nil
	}
	now := t.now()
	out := make([]slotHealth, 0, len(t.slots))
	for k, s := range t.slots {
		out = append(out, slotHealth{
			Follower:  k.follower,
			City:      k.city,
			Seq:       s.seq,
			AgeMillis: now.Sub(s.lastSeen).Milliseconds(),
			Holding:   !s.holdSince.IsZero(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].City != out[j].City {
			return out[i].City < out[j].City
		}
		return out[i].Follower < out[j].Follower
	})
	return out
}
