package server

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"grouptravel/internal/replicate"
)

// The epoch/fencing test suite: a node that observes a newer replication
// term than its own must latch read-only (split-brain prevention), the
// latch must survive a restart, and a promotion must cleanly end every
// replication stream the node is serving or consuming.

// sendEpoch delivers a term to a node the way a peer would: stamped on
// any request's headers (the epoch wrapper observes it before routing).
func sendEpoch(t *testing.T, baseURL string, term int64, owner string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", baseURL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(replicate.HeaderEpoch, strconv.FormatInt(term, 10))
	if owner != "" {
		req.Header.Set(replicate.HeaderEpochPrimary, owner)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestEpochFencesPrimary: a writable primary that hears a higher term
// owned by someone else latches read-only and points writers at the new
// owner; lower/equal terms are ignored.
func TestEpochFencesPrimary(t *testing.T) {
	dir := t.TempDir()
	p, pts, _, _ := replicationPair(t,
		Options{SnapshotDir: dir},
		Options{SnapshotDir: t.TempDir()})

	if _, err := mcCreateGroup(pts, mcCities[0], "alpha"); err != nil {
		t.Fatal(err)
	}
	if term, _ := p.Epoch(); term != 0 {
		t.Fatalf("fresh primary term = %d, want 0", term)
	}

	// A relayed request carrying term 5 owned by another node fences.
	resp := sendEpoch(t, pts.URL, 5, "http://new-primary:9")
	if got := resp.Header.Get(replicate.HeaderEpoch); got != "5" {
		t.Fatalf("response epoch header = %q, want 5", got)
	}
	if role := p.Role(); role != "fenced" {
		t.Fatalf("role = %q, want fenced", role)
	}
	if term, owner := p.Epoch(); term != 5 || owner != "http://new-primary:9" {
		t.Fatalf("epoch = %d/%q", term, owner)
	}

	// Every post-epoch write is rejected with the new primary's address.
	reqResp, err := http.Post(pts.URL+"/cities/alpha/groups", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(reqResp.Body)
	reqResp.Body.Close()
	if reqResp.StatusCode != http.StatusForbidden {
		t.Fatalf("fenced mutation: %d %s", reqResp.StatusCode, body)
	}
	if got := reqResp.Header.Get("X-GT-Primary"); got != "http://new-primary:9" {
		t.Fatalf("fenced X-GT-Primary = %q", got)
	}

	// A stale (lower) term changes nothing.
	sendEpoch(t, pts.URL, 3, "http://even-older:9")
	if term, owner := p.Epoch(); term != 5 || owner != "http://new-primary:9" {
		t.Fatalf("epoch after stale observe = %d/%q", term, owner)
	}

	// The fence is durable: a restart over the same state dir comes back
	// fenced, not writable.
	pts.Close()
	p.Close()
	p2, err := NewMultiCity(Options{SnapshotDir: dir, Cities: mcCities})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if role := p2.Role(); role != "fenced" {
		t.Fatalf("restarted role = %q, want fenced", role)
	}
	if term, owner := p2.Epoch(); term != 5 || owner != "http://new-primary:9" {
		t.Fatalf("restarted epoch = %d/%q", term, owner)
	}
}

// TestPromotedRoleSurvivesRestart: a promoted follower restarted over
// the same state dir must come back writable under its own term — not
// re-tail the deposed upstream it was configured against.
func TestPromotedRoleSurvivesRestart(t *testing.T) {
	fdir := t.TempDir()
	_, pts, f, fts := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: fdir, Advertise: "http://follower-b:9"})
	if _, err := mcCreateGroup(pts, mcCities[0], "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := f.Follower().CatchUp(testTimeout()); err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if term, owner := f.Epoch(); term != 1 || owner != "http://follower-b:9" {
		t.Fatalf("promoted epoch = %d/%q", term, owner)
	}
	fts.Close()
	f.Close()

	f2, err := NewMultiCity(Options{
		SnapshotDir: fdir, Cities: mcCities,
		Follow: pts.URL, FollowPoll: -1, Advertise: "http://follower-b:9",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if role := f2.Role(); role != "promoted" {
		t.Fatalf("restarted role = %q, want promoted", role)
	}
	if f2.Follower() != nil {
		t.Fatal("restarted promoted node built a follower tailing the deposed primary")
	}
	// And it is actually writable.
	fts2 := httptest.NewServer(f2.Handler())
	defer fts2.Close()
	if _, err := mcCreateGroup(fts2, mcCities[0], "alpha"); err != nil {
		t.Fatalf("promoted-at-boot node refused a write: %v", err)
	}
}

// TestPromoteWhileStreaming: promoting a follower that (a) is tailing
// the primary over a live push stream and (b) is itself serving an
// inbound ?stream=1 consumer must cleanly end both exactly once — the
// outbound tailer stops applying, the inbound consumer's response
// terminates so it can re-handshake against the new role — while the
// promoted node keeps serving writes. Run under -race via `make race`.
func TestPromoteWhileStreaming(t *testing.T) {
	p, pts, f, fts := replicationPair(t,
		Options{SnapshotDir: t.TempDir()},
		Options{SnapshotDir: t.TempDir(), FollowPoll: 2 * time.Millisecond, Advertise: "http://follower-b:9"})

	// Workload on the primary while the follower's push tailers run.
	m := &mutator{ts: pts, city: mcCities[0], key: "alpha", rng: rand.New(rand.NewSource(42))}
	for i := 0; i < 8; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}
	waitApplied := func(min int64) int64 {
		t.Helper()
		deadline := time.Now().Add(testTimeout())
		for {
			if l, ok := f.Follower().Lag("alpha"); ok && l.AppliedSeq >= min {
				return l.AppliedSeq
			}
			if time.Now().After(deadline) {
				l, _ := f.Follower().Lag("alpha")
				t.Fatalf("follower never reached seq %d (at %+v)", min, l)
			}
			time.Sleep(time.Millisecond)
		}
	}
	applied := waitApplied(1)

	// An inbound push consumer on the follower (a cascading replica).
	streamResp, err := http.Get(fmt.Sprintf("%s/cities/alpha/wal?from=%d&stream=1&hb=100ms&fid=probe", fts.URL, applied))
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if streamResp.StatusCode != http.StatusOK {
		t.Fatalf("inbound stream: %d", streamResp.StatusCode)
	}
	streamDone := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, streamResp.Body)
		streamDone <- err
	}()

	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}

	// The inbound consumer's stream ends promptly (the seal wakes it and
	// the term check terminates the push loop).
	select {
	case <-streamDone:
	case <-time.After(testTimeout()):
		t.Fatal("inbound push stream did not end on promote")
	}

	// The outbound tailer is stopped: later primary writes never apply.
	frozen, _ := f.Follower().Lag("alpha")
	for i := 0; i < 6; i++ {
		m.step(t)
	}
	if t.Failed() {
		t.FailNow()
	}
	time.Sleep(20 * time.Millisecond) // would be ample for a live tailer
	after, _ := f.Follower().Lag("alpha")
	if after.AppliedSeq != frozen.AppliedSeq {
		t.Fatalf("promoted node kept applying: %d -> %d", frozen.AppliedSeq, after.AppliedSeq)
	}

	// The promoted node serves writes under its own term.
	if role := f.Role(); role != "promoted" {
		t.Fatalf("role = %q", role)
	}
	if _, err := mcCreateGroup(fts, mcCities[0], "alpha"); err != nil {
		t.Fatalf("promoted node refused a write: %v", err)
	}
	if term, owner := f.Epoch(); term != 1 || owner != "http://follower-b:9" {
		t.Fatalf("epoch = %d/%q", term, owner)
	}

	// Promote is idempotent — a second call (the router retrying, an
	// operator double-firing the runbook) is a no-op, not a second bump.
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if term, _ := f.Epoch(); term != 1 {
		t.Fatalf("re-promote bumped the term to %d", term)
	}

	// The deposed primary fences on its next contact with the promoted
	// node's term (here: relayed by hand, as a router poll would).
	sendEpoch(t, pts.URL, 1, "http://follower-b:9")
	if role := p.Role(); role != "fenced" {
		t.Fatalf("deposed primary role = %q, want fenced", role)
	}
}
