package server

import "strings"

// Topology is the node-metadata surface the server consults for its own
// place in a replication topology: where peers can reach this node, and
// which primary (if any) it replicates from. Boot wiring (flags, config
// files) satisfies it with StaticTopology; embedders that derive node
// metadata elsewhere — a service registry, a lease in a shared store —
// plug their own implementation in through Options.Topology.
//
// Upstream must be stable for the process lifetime: the serving layer
// decides at construction whether to build replication state, and
// role *transitions* go through Promote — or through the replication
// epoch (epoch.go), which can fence a writable node read-only when a
// peer proves a newer term — not through a changing Upstream. Both
// methods must be safe for concurrent use.
type Topology interface {
	// Advertise is the base URL this node is reachable at by peers and
	// front tiers — what it self-describes as in health reports and what
	// a router matches X-GT-Primary hints against. "" when unknown.
	Advertise() string
	// Upstream is the base URL of the primary this node replicates from.
	// "" on a primary.
	Upstream() string
}

// StaticTopology is the flag-configured Topology a normal process boot
// uses: -advertise and -follow, fixed for the process lifetime.
type StaticTopology struct {
	AdvertiseURL string
	PrimaryURL   string
}

func (t StaticTopology) Advertise() string { return strings.TrimRight(t.AdvertiseURL, "/") }
func (t StaticTopology) Upstream() string  { return strings.TrimRight(t.PrimaryURL, "/") }
