package server

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grouptravel/internal/ci"
	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/registry"
	"grouptravel/internal/store"
	"grouptravel/internal/telemetry"
)

// cityState is one city's serving state: the group/package registries over
// the city's shared engine, plus the persistence plumbing.
//
// # Persistence model
//
// Durable state is snapshot + write-ahead log suffix. Every mutation
// commits by appending exactly one WAL record — O(1 record), regardless
// of how many groups and packages the city holds — and the full-state
// snapshot is only rewritten at *compaction*: when the log crosses the
// record-count or byte thresholds, or when the city is evicted cleanly.
// Recovery (newCityState) loads the snapshot and replays the log tail.
type cityState struct {
	key    string
	city   *dataset.City
	engine *core.Engine

	// mu guards only the registries and id allocation; per-entity state is
	// guarded by the entity's own lock (see the package comment).
	mu       sync.RWMutex
	groups   map[int]*groupState
	packages map[int]*packageState
	nextID   int

	// builds singleflights identical concurrent Build calls (same profile,
	// query and params) so the CI-construction phase is deduped like the
	// cluster cache already dedups the clustering.
	builds buildGroup

	// snapDir is empty when persistence is off (wal is nil then too).
	// persistMu orders mutations against compaction: a mutation holds the
	// read side across [in-memory commit + WAL append] so compaction
	// (write side: collect + snapshot + log reset) can never collect a
	// state whose record it then truncates — or miss a record its
	// snapshot doesn't contain.
	snapDir      string
	wal          *store.WAL
	persistMu    sync.RWMutex
	compactEvery int64
	compactBytes int64
	compacting   atomic.Bool
	snapTime     atomic.Int64 // unix nanos of the last successful compaction
	persistErr   atomic.Value // last persistence error string; "" once healthy

	// met holds the city's registry-backed counters (telemetry.go) —
	// the values both /healthz and /metrics report; compactDur is the
	// process-wide compaction-duration histogram.
	met        cityMetrics
	compactDur *telemetry.Histogram

	// notify is the city's commit broadcast (notify.go): woken after every
	// applied mutation — primary commits, follower frame applies, snapshot
	// handoffs, promotion — so /wal long-polls and push streams wake on
	// commit instead of sleeping a poll interval. The notifier is owned by
	// the Server (it outlives eviction/reload cycles; cold-city long-polls
	// wait on it too) and shared with the cityState at construction.
	// streams carries the process-wide push-stream instruments.
	notify  *commitNotify
	streams *streamMetrics

	// Replay facts from the last load, for /healthz. Immutable after
	// newCityState.
	replay       store.WALReplayInfo
	replayMillis float64

	// replica is the follower-mode apply state (see follower.go); nil on
	// primaries and set once at construction.
	replica *replicaMirror

	// slots is the server's follower-position ledger (slots.go): push
	// streams feed it, compaction consults it. epochInfo reads the
	// server's replication term for stamping outgoing stream batches and
	// ending push streams across a term change.
	slots     *slotTable
	epochInfo func() (int64, string)

	// cacheVersion numbers the city's mutation history for the rendered-
	// byte cache (cache.go): seeded from appliedSeq at load and bumped
	// after every applied mutation (primary commits, follower frame
	// applies, snapshot handoffs). rcache holds the rendered bytes;
	// fleetVersion points at the server-level /cities version so a city
	// mutation also invalidates the fleet listing.
	cacheVersion atomic.Int64
	rcache       respCache
	fleetVersion *atomic.Int64
}

// groupState is one registered group. group is immutable after creation;
// mu guards the consensus memos.
type groupState struct {
	group *profile.Group

	mu       sync.Mutex
	profiles map[string]*profile.Profile      // consensus name -> aggregated profile
	aggs     map[string]*consensus.Incremental // consensus name -> incremental aggregator
}

// agg returns the group's incremental aggregator for the method, building
// it on first use by joining every member. The aggregator caches the
// member values column-wise, so subsequent profiles — weighted requests
// in particular, which arrive with caller-specific weights and were
// previously full recomputes walking every member profile — reuse the
// cached columns and online sums. Callers hold gs.mu.
func (gs *groupState) agg(name string, method consensus.Method) (*consensus.Incremental, error) {
	if a, ok := gs.aggs[name]; ok {
		return a, nil
	}
	a, err := consensus.NewIncremental(gs.group.Schema(), method)
	if err != nil {
		return nil, err
	}
	for _, m := range gs.group.Members {
		if err := a.Join(m); err != nil {
			return nil, err
		}
	}
	if gs.aggs == nil {
		gs.aggs = make(map[string]*consensus.Incremental)
	}
	gs.aggs[name] = a
	return a, nil
}

// profileFor returns the group's aggregated profile under the named
// consensus method, memoizing unweighted aggregations. Both paths run on
// the incremental aggregator, which is pinned bit-identical to the
// GroupProfile / GroupProfileWeighted full recomputes by the equivalence
// test in internal/consensus.
func (gs *groupState) profileFor(name string, method consensus.Method, weights []float64) (*profile.Profile, error) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if len(weights) > 0 {
		a, err := gs.agg(name, method)
		if err != nil {
			return nil, err
		}
		return a.ProfileWeighted(weights)
	}
	if gp, ok := gs.profiles[name]; ok {
		return gp, nil
	}
	a, err := gs.agg(name, method)
	if err != nil {
		return nil, err
	}
	gp, err := a.Profile()
	if err != nil {
		return nil, err
	}
	gs.profiles[name] = gp
	return gp, nil
}

// packageState is one built package; mu serializes access to the
// customization session (interact.Session is not concurrency-safe).
type packageState struct {
	groupID int
	method  string

	mu      sync.Mutex
	session *interact.Session
}

// newCityState builds (or, with persistence on, recovers) a city's serving
// state. Called by the registry on first touch and again after eviction.
// Recovery is snapshot + WAL replay: the snapshot is the last compaction,
// the log holds every mutation since. A torn log tail was already
// truncated by the replayer (surfaced on /healthz); a corrupt snapshot
// quarantines both files — the log is a suffix over the snapshot and is
// meaningless without its base.
func (s *Server) newCityState(c *registry.City[*cityState]) (*cityState, error) {
	cs := &cityState{
		key:          c.Key,
		city:         c.City,
		engine:       c.Engine,
		groups:       make(map[int]*groupState),
		packages:     make(map[int]*packageState),
		nextID:       1,
		snapDir:      s.snapshotDir,
		compactEvery: s.compactEvery,
		compactBytes: s.compactBytes,
		fleetVersion: &s.fleetVersion,
		met:          s.metrics.city(c.Key),
		compactDur:   s.metrics.compaction,
		notify:       s.notifier(c.Key),
		streams:      &s.metrics.streams,
		slots:        s.slots,
		epochInfo:    s.Epoch,
	}
	cs.persistErr.Store("")
	// Hot-path counters live on the structs that bump them; registration
	// idempotence means a reloaded city resumes the same counters.
	cs.rcache.hits = cs.met.byteHits
	cs.rcache.misses = cs.met.byteMisses
	cs.rcache.fillRaces = cs.met.byteFillRaces
	cs.builds.dedups = cs.met.buildDedups
	// A city loaded after promotion is an ordinary read-write city; only
	// an active follower builds the replication mirror. (A fenced node is
	// read-only too, but nothing feeds it frames — no mirror.)
	follower := s.topo.Upstream() != "" && !s.promoted.Load()
	if cs.snapDir == "" {
		if follower {
			ap, mst, err := store.NewApplier(nil, cs.city)
			if err != nil {
				return nil, err
			}
			cs.replica = &replicaMirror{st: mst, ap: ap}
		}
		return cs, nil
	}

	start := time.Now()
	st, err := cs.recoverState()
	if err != nil {
		return nil, err
	}
	wal, err := store.OpenWAL(cs.snapDir, cs.key, s.walSync)
	if err != nil {
		return nil, fmt.Errorf("server: wal for %q: %w", cs.key, err)
	}
	wal.Instrument(s.metrics.walAppend, s.metrics.walFsync)
	// Fsync latency grows with the *file* being synced, not the record
	// appended (ext4 journals metadata proportional to file size), so the
	// fsync histogram is partitioned by log size at sync time — the label
	// that explains why appends on a 100k-record log read slower than on a
	// fresh one while B/op stays flat.
	wal.InstrumentSizedFsync(s.metrics.fsyncBySize)
	wal.Seed(cs.replay.CurrentRecords, cs.replay.LastSeq)
	cs.wal = wal
	// Seed the byte-cache version from the recovered sequence so a
	// reload after restart never resumes at a version an old cache entry
	// could collide with.
	cs.cacheVersion.Store(cs.replay.LastSeq)
	cs.replayMillis = float64(time.Since(start)) / float64(time.Millisecond)
	if st != nil {
		cs.nextID = st.NextID
		groups, packages, err := materializeState(cs.city, st)
		if err != nil {
			// The registry forgets failed loads and retries on the next
			// request; leaving the log open would leak one fd per retry.
			wal.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		cs.groups, cs.packages = groups, packages
	}
	if follower {
		// Keep the recovered state as the replication mirror: the applier
		// resumes validation exactly where recovery stopped, so the
		// follower's resume point survives its own restarts.
		ap, mst, err := store.NewApplier(st, cs.city)
		if err != nil {
			wal.Close()
			return nil, err
		}
		ap.Seed(cs.replay.LastSeq)
		cs.replica = &replicaMirror{st: mst, ap: ap}
	}
	return cs, nil
}

// materializeState builds the serving registries from a persisted state —
// the one route from durable form to live form, shared by restart
// recovery and a follower's snapshot handoff.
func materializeState(city *dataset.City, st *store.ServerState) (map[int]*groupState, map[int]*packageState, error) {
	groups := make(map[int]*groupState, len(st.Groups))
	packages := make(map[int]*packageState, len(st.Packages))
	for _, gr := range st.Groups {
		profiles := gr.Profiles
		if profiles == nil {
			profiles = map[string]*profile.Profile{}
		}
		groups[gr.ID] = &groupState{group: gr.Group, profiles: profiles}
	}
	for _, pr := range st.Packages {
		sess, err := interact.NewSession(city, pr.Package)
		if err != nil {
			return nil, nil, fmt.Errorf("restore package %d: %w", pr.ID, err)
		}
		// The persisted ops are already reflected in the package items;
		// reinstating the log keeps /refine seeing them after a restart.
		sess.SetLog(pr.Ops)
		packages[pr.ID] = &packageState{groupID: pr.GroupID, method: pr.Method, session: sess}
	}
	return groups, packages, nil
}

// recoverState reads snapshot + log. It returns nil state (not an error)
// when the city starts empty: nothing persisted yet, or corruption that
// was quarantined. I/O failures are returned as errors so the registry
// forgets the load and the next request retries.
func (cs *cityState) recoverState() (*store.ServerState, error) {
	base, err := store.ReadSnapshot(cs.snapDir, cs.key, cs.city)
	if err != nil {
		// Corruption must not brick the city — quarantine, start empty,
		// surface on /healthz. A transient I/O failure is different:
		// quarantining an intact snapshot would orphan it, so fail this
		// load instead.
		var corrupt *store.CorruptSnapshotError
		if !errors.As(err, &corrupt) {
			return nil, fmt.Errorf("server: snapshot for %q: %w", cs.key, err)
		}
		cs.quarantineState(err)
		return nil, nil
	}
	st, info, err := store.ReplayWAL(cs.snapDir, cs.key, cs.city, base)
	if err != nil {
		return nil, fmt.Errorf("server: wal replay for %q: %w", cs.key, err)
	}
	cs.replay = *info
	// The store validates structure against the city; consensus names are
	// server vocabulary, so check them here — at load, where the failure
	// lands on /healthz — rather than letting a hand-edited method 500 on
	// the first /refine.
	for _, pr := range st.Packages {
		if _, _, err := methodByName(pr.Method); err != nil {
			cs.quarantineState(fmt.Errorf("package %d: %w", pr.ID, err))
			cs.replay = store.WALReplayInfo{}
			return nil, nil
		}
	}
	if st.NextID == 1 && len(st.Groups) == 0 && len(st.Packages) == 0 && base == nil {
		return nil, nil // true first boot: no snapshot, no log
	}
	return st, nil
}

// quarantineState moves the snapshot and log aside (to <file>.corrupt) so
// the next compaction cannot overwrite the only copy of the previously
// committed state, and records the failure for /healthz. The moved files
// are the operator's recovery artifacts. The log goes with the snapshot:
// it is a suffix over that exact base and cannot replay without it.
func (cs *cityState) quarantineState(cause error) {
	moved := make([]string, 0, 3)
	for _, src := range []string{
		store.SnapshotPath(cs.snapDir, cs.key),
		store.WALPath(cs.snapDir, cs.key),
		store.PendingWALPath(cs.snapDir, cs.key),
	} {
		if _, err := os.Stat(src); err != nil {
			continue
		}
		dst := src + ".corrupt"
		if err := os.Rename(src, dst); err != nil {
			cs.persistErr.Store(fmt.Sprintf("state ignored (quarantine failed: %v): %v", err, cause))
			return
		}
		moved = append(moved, dst)
	}
	cs.persistErr.Store(fmt.Sprintf("state ignored (moved to %v): %v", moved, cause))
}

// register allocates an id for the package under the registry lock.
func (cs *cityState) register(ps *packageState) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	id := cs.nextID
	cs.nextID++
	cs.packages[id] = ps
	return id
}

// commit runs one mutation under the read side of persistMu and gives it
// a logRec callback to append its WAL record. The callback must be
// invoked while the mutation still holds the entity lock it mutated
// under: append order then matches application order per entity, which
// replay relies on (two ops on one package must land in the log in the
// order their post-op CI states were captured). persistMu orders the
// whole [mutate + append] against compaction (write side), so a snapshot
// can never miss a record that the log rotation then seals away.
//
// The returned sequence is the mutation's commit token — what the
// handler hands back as X-GT-Seq so a front tier can pin the session's
// reads to replicas at or past it. 0 when persistence is off (no
// sequence space exists, and no replicas either).
//
// Append failures never fail the request — the in-memory state is already
// committed — but they are recorded for /healthz and veto eviction, since
// the in-memory registries may now be the only complete copy. The commit
// token for such a write is pinPrimarySeq: the write exists only in this
// process and can never ship to a replica, so the token must name a
// sequence no follower will ever report — a router then routes the
// session's reads to the primary, the one node that can serve the write,
// instead of silently dropping read-your-writes.
func (cs *cityState) commit(mutate func(logRec func(store.WALRecord))) int64 {
	cs.persistMu.RLock()
	logged := false
	var seq int64
	mutate(func(rec store.WALRecord) {
		logged = true
		if cs.wal != nil {
			s, err := cs.wal.Append(rec)
			if err != nil {
				cs.persistErr.Store(err.Error())
				seq = pinPrimarySeq
			} else {
				seq = s
			}
		}
	})
	cs.persistMu.RUnlock()
	if logged {
		// Invalidate the byte caches strictly after the in-memory state
		// change and strictly before the mutation is acknowledged: a
		// reader arriving after this mutation's response can never hit
		// bytes rendered before it (cache.go).
		cs.bumpCacheVersion()
		// Wake /wal long-polls and push streams with the durable head —
		// never the pinPrimarySeq sentinel: a failed append's record can
		// never ship, so the notifier must not claim its sequence.
		if cs.notify != nil {
			cs.notify.wake(cs.appliedSeq())
		}
		cs.maybeCompact()
	}
	return seq
}

// pinPrimarySeq is the commit token of a mutation whose WAL append
// failed: unreachable by any replica, it pins the session to the
// primary. (A later, healthy append may reuse the failed record's real
// sequence number, so the real number must NOT be handed out — a
// follower could then report it without holding this write.)
const pinPrimarySeq = int64(math.MaxInt64)

// maybeCompact starts a compaction when the log crosses a threshold. The
// snapshot write is O(city state), so it runs on a background goroutine —
// the mutating request that crossed the threshold answers immediately.
// One compaction runs at a time; contemporaries skip rather than queue
// (the next mutation past the threshold re-triggers).
func (cs *cityState) maybeCompact() {
	if cs.wal == nil {
		return
	}
	st := cs.wal.Stats()
	overRecords := cs.compactEvery > 0 && st.Records >= cs.compactEvery
	overBytes := cs.compactBytes > 0 && st.Bytes >= cs.compactBytes
	if !overRecords && !overBytes {
		return
	}
	// Fan-out awareness: while a live follower's stream position still
	// needs records this compaction would fold into the snapshot, wait —
	// it keeps streaming cheap frames instead of taking a full handoff.
	// The slot table's own deadlines bound the wait (a dead follower is
	// collected, a stuck one is dropped), and the next mutation past the
	// threshold re-triggers; eviction compaction ignores slots entirely.
	if cs.slots != nil && cs.slots.hold(cs.key, cs.wal.LastSeq()) {
		return
	}
	if !cs.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer cs.compacting.Store(false)
		_ = cs.compact()
	}()
}

// compact folds the log into the snapshot. Under the write lock it only
// collects the state (an in-memory clone) and rotates the log — O(1) —
// sealing the current segment as the pending file; the O(city state)
// snapshot encode + write + fsync then runs *outside* persistMu, so
// mutations keep appending to the fresh segment instead of stalling for
// seconds behind a 100k-package snapshot. The snapshot records the
// sequence watermark it covers (WALSeq) and the sealed segment holds
// exactly the records at or below it, so a crash at any point recovers
// exactly: snapshot missing → old snapshot + pending + current replay;
// snapshot landed but pending not yet removed → replay skips the
// already-covered sequences. Failures leave the log intact (recovery
// still works) and are recorded for /healthz rather than failing the
// mutation that triggered the compaction.
func (cs *cityState) compact() error {
	if cs.snapDir == "" {
		return nil
	}
	// A pending segment means an earlier compaction never finished its
	// snapshot; rotating again would need a second pending slot, so
	// retry inline under the lock — rare, and it clears the debt.
	if cs.wal == nil || cs.wal.PendingExists() {
		return cs.compactInline()
	}
	start := time.Now()
	cs.persistMu.Lock()
	st := cs.collectState()
	st.WALSeq = cs.wal.LastSeq()
	if err := cs.wal.Rotate(); err != nil {
		cs.persistMu.Unlock()
		cs.persistErr.Store(err.Error())
		return err
	}
	cs.persistMu.Unlock()

	at, err := store.WriteSnapshot(cs.snapDir, cs.key, st)
	if err != nil {
		cs.persistErr.Store(err.Error())
		return err
	}
	// The sealed segment's records now live in the snapshot.
	if err := store.RemovePendingWAL(cs.snapDir, cs.key); err != nil {
		cs.persistErr.Store(err.Error())
		return err
	}
	cs.compactDur.ObserveSince(start)
	cs.noteCompaction(at)
	return nil
}

// compactInline is the fallback: snapshot under the write lock, then
// drop the pending segment and truncate the log.
func (cs *cityState) compactInline() error {
	start := time.Now()
	cs.persistMu.Lock()
	defer cs.persistMu.Unlock()
	st := cs.collectState()
	if cs.wal != nil {
		st.WALSeq = cs.wal.LastSeq()
	}
	at, err := store.WriteSnapshot(cs.snapDir, cs.key, st)
	if err != nil {
		cs.persistErr.Store(err.Error())
		return err
	}
	if err := store.RemovePendingWAL(cs.snapDir, cs.key); err != nil {
		cs.persistErr.Store(err.Error())
		return err
	}
	if cs.wal != nil {
		if err := cs.wal.Reset(); err != nil {
			cs.persistErr.Store(err.Error())
			return err
		}
	}
	cs.compactDur.ObserveSince(start)
	cs.noteCompaction(at)
	return nil
}

func (cs *cityState) noteCompaction(at time.Time) {
	cs.snapTime.Store(at.UnixNano())
	cs.met.compactions.Inc()
	cs.persistErr.Store("")
	// The /cities listing reports walBytes and snapshot age; a
	// compaction changes both, so refresh the fleet-level cache.
	if cs.fleetVersion != nil {
		cs.fleetVersion.Add(1)
	}
}

// handleEvict runs when the registry unloads the city (no in-flight
// requests exist then, and the registry's drain keeps the key from
// reloading until this returns). A background threshold compaction may
// still be mid-flight though, so eviction first claims the compaction
// slot — waiting it out — then compacts if the log holds records (the
// reload path then reads one snapshot instead of replaying) and closes
// the log's file handle. If compaction fails the log simply stays;
// replay covers it.
func (cs *cityState) handleEvict() {
	if cs.wal == nil {
		return
	}
	for !cs.compacting.CompareAndSwap(false, true) {
		time.Sleep(time.Millisecond)
	}
	defer cs.compacting.Store(false)
	if cs.wal.Stats().Records > 0 || cs.wal.PendingExists() {
		_ = cs.compact()
	}
	_ = cs.wal.Close()
}

// clonePackage deep-copies a package at the CI level so snapshot encoding
// can run outside the package lock while the session keeps mutating the
// original. POIs are immutable and shared.
func clonePackage(tp *core.TravelPackage) *core.TravelPackage {
	cp := *tp
	cp.CIs = make([]*ci.CI, len(tp.CIs))
	for i, c := range tp.CIs {
		cc := *c
		cc.Items = append([]*poi.POI(nil), c.Items...)
		cp.CIs[i] = &cc
	}
	return &cp
}

// collectState assembles the city's full persistent state. It follows the
// lock hierarchy: the registry lock is released before any entity lock is
// taken.
func (cs *cityState) collectState() *store.ServerState {
	cs.mu.RLock()
	st := &store.ServerState{City: cs.city.Name, NextID: cs.nextID}
	groupIDs := make([]int, 0, len(cs.groups))
	groups := make(map[int]*groupState, len(cs.groups))
	for id, gs := range cs.groups {
		groupIDs = append(groupIDs, id)
		groups[id] = gs
	}
	pkgIDs := make([]int, 0, len(cs.packages))
	pkgs := make(map[int]*packageState, len(cs.packages))
	for id, ps := range cs.packages {
		pkgIDs = append(pkgIDs, id)
		pkgs[id] = ps
	}
	cs.mu.RUnlock()
	sort.Ints(groupIDs)
	sort.Ints(pkgIDs)

	for _, id := range groupIDs {
		gs := groups[id]
		gs.mu.Lock()
		profiles := make(map[string]*profile.Profile, len(gs.profiles))
		for name, p := range gs.profiles {
			profiles[name] = p // profiles are immutable once memoized
		}
		gs.mu.Unlock()
		st.Groups = append(st.Groups, store.GroupRecord{ID: id, Group: gs.group, Profiles: profiles})
	}
	for _, id := range pkgIDs {
		ps := pkgs[id]
		ps.mu.Lock()
		tp := clonePackage(ps.session.Package())
		ops := append([]interact.Op(nil), ps.session.Log()...)
		ps.mu.Unlock()
		st.Packages = append(st.Packages, store.PackageRecord{
			ID: id, GroupID: ps.groupID, Method: ps.method, Package: tp, Ops: ops,
		})
	}
	return st
}

// appliedSeq is the city's current WAL position: the last committed
// sequence on a primary, the last applied sequence on a follower (frames
// are re-appended verbatim AFTER materialization, so the local log head
// never runs ahead of the serving state — the invariant a router's
// freshness pinning relies on). 0 when the city runs without persistence
// and without a replication mirror — no sequence space exists then.
//
// The mirror branch (persistence-less follower) must go quiet on a
// latched fault: the mirror's cursor then includes a record the serving
// registries never received, and reporting it would route a pinned read
// here for state this node cannot serve. Under-reporting is always safe.
func (cs *cityState) appliedSeq() int64 {
	if cs.wal != nil {
		return cs.wal.LastSeq()
	}
	if m := cs.replica; m != nil {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.ap != nil && m.fault == nil {
			return m.ap.LastSeq()
		}
	}
	return 0
}

// evictionSafe reports whether the city can be unloaded without losing
// state: with persistence on, its last persistence interaction must have
// succeeded — otherwise the in-memory registries are the only complete
// copy of committed mutations and eviction would silently 404 them.
func (cs *cityState) evictionSafe() bool {
	if cs.snapDir == "" {
		return true // no persistence configured: nothing to preserve
	}
	msg, _ := cs.persistErr.Load().(string)
	return msg == ""
}

// health summarizes the city for the health endpoint.
func (cs *cityState) health() cityHealth {
	cs.mu.RLock()
	groups, packages := len(cs.groups), len(cs.packages)
	cs.mu.RUnlock()
	// Counters read .Value() off the same registry series /metrics
	// renders — one value set, two surfaces, no drift.
	h := cityHealth{
		Cache:        cs.engine.CacheStats(),
		Groups:       groups,
		Packages:     packages,
		BuildDedups:  cs.builds.dedups.Value(),
		LastSnapshot: lastSnapshotString(cs.snapTime.Load()),
		ByteCache: byteCacheHealth{
			Hits:      cs.rcache.hits.Value(),
			Misses:    cs.rcache.misses.Value(),
			FillRaces: cs.rcache.fillRaces.Value(),
			Entries:   cs.rcache.size(),
		},
	}
	if msg, _ := cs.persistErr.Load().(string); msg != "" {
		h.PersistErr = msg
	}
	if cs.wal != nil {
		ws := cs.wal.Stats()
		h.WAL = &walHealth{
			Records:         ws.Records,
			Bytes:           ws.Bytes,
			Fsyncs:          ws.Fsyncs,
			LastFsyncMicros: ws.LastFsyncMicros,
			Compactions:     cs.met.compactions.Value(),
			Replayed:        cs.replay.Records,
			ReplayMillis:    cs.replayMillis,
			ReplayTruncated: cs.replay.Truncated,
		}
	}
	return h
}
