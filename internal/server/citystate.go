package server

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"grouptravel/internal/ci"
	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/registry"
	"grouptravel/internal/store"
)

// cityState is one city's serving state: the group/package registries over
// the city's shared engine, plus the persistence plumbing.
type cityState struct {
	key    string
	city   *dataset.City
	engine *core.Engine

	// mu guards only the registries and id allocation; per-entity state is
	// guarded by the entity's own lock (see the package comment).
	mu       sync.RWMutex
	groups   map[int]*groupState
	packages map[int]*packageState
	nextID   int

	// snapDir is empty when persistence is off. snapMu serializes snapshot
	// writes (state collection runs before it, under the usual locks).
	snapDir  string
	snapMu   sync.Mutex
	snapTime atomic.Int64  // unix nanos of the last successful snapshot
	snapErr  atomic.Value  // last snapshot error string; "" once healthy
}

// groupState is one registered group. group is immutable after creation;
// mu guards the consensus-profile memo.
type groupState struct {
	group *profile.Group

	mu       sync.Mutex
	profiles map[string]*profile.Profile // consensus name -> aggregated profile
}

// profileFor returns the group's aggregated profile under the named
// consensus method, memoizing unweighted aggregations (weighted requests
// are caller-specific and computed fresh).
func (gs *groupState) profileFor(name string, method consensus.Method, weights []float64) (*profile.Profile, error) {
	if len(weights) > 0 {
		return consensus.GroupProfileWeighted(gs.group, method, weights)
	}
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gp, ok := gs.profiles[name]; ok {
		return gp, nil
	}
	gp, err := consensus.GroupProfile(gs.group, method)
	if err != nil {
		return nil, err
	}
	gs.profiles[name] = gp
	return gp, nil
}

// packageState is one built package; mu serializes access to the
// customization session (interact.Session is not concurrency-safe).
type packageState struct {
	groupID int
	method  string

	mu      sync.Mutex
	session *interact.Session
}

// newCityState builds (or, with persistence on, restores) a city's serving
// state. Called by the registry on first touch and again after eviction.
func (s *Server) newCityState(c *registry.City[*cityState]) (*cityState, error) {
	cs := &cityState{
		key:      c.Key,
		city:     c.City,
		engine:   c.Engine,
		groups:   make(map[int]*groupState),
		packages: make(map[int]*packageState),
		nextID:   1,
		snapDir:  s.snapshotDir,
	}
	cs.snapErr.Store("")
	if cs.snapDir == "" {
		return cs, nil
	}
	st, err := store.ReadSnapshot(cs.snapDir, cs.key, cs.city)
	if err != nil {
		// Corruption must not brick the city — start empty, quarantine
		// the bad file, surface on /healthz. A transient I/O failure is
		// different: quarantining an intact snapshot would orphan it, so
		// fail this load instead; the registry forgets failed loads and
		// the next request retries.
		var corrupt *store.CorruptSnapshotError
		if !errors.As(err, &corrupt) {
			return nil, fmt.Errorf("server: snapshot for %q: %w", cs.key, err)
		}
		cs.quarantineSnapshot(err)
		return cs, nil
	}
	if st == nil {
		return cs, nil // first boot: nothing persisted yet
	}
	// The store validates structure against the city; consensus names are
	// server vocabulary, so check them here — at load, where the failure
	// lands on /healthz — rather than letting a hand-edited method 500 on
	// the first /refine.
	for _, pr := range st.Packages {
		if _, _, err := methodByName(pr.Method); err != nil {
			cs.quarantineSnapshot(fmt.Errorf("package %d: %w", pr.ID, err))
			return cs, nil
		}
	}
	cs.nextID = st.NextID
	for _, gr := range st.Groups {
		profiles := gr.Profiles
		if profiles == nil {
			profiles = map[string]*profile.Profile{}
		}
		cs.groups[gr.ID] = &groupState{group: gr.Group, profiles: profiles}
	}
	for _, pr := range st.Packages {
		sess, err := interact.NewSession(cs.city, pr.Package)
		if err != nil {
			return nil, fmt.Errorf("server: restore package %d: %w", pr.ID, err)
		}
		// The persisted ops are already reflected in the package items;
		// reinstating the log keeps /refine seeing them after a restart.
		sess.SetLog(pr.Ops)
		cs.packages[pr.ID] = &packageState{groupID: pr.GroupID, method: pr.Method, session: sess}
	}
	return cs, nil
}

// quarantineSnapshot moves an unreadable snapshot aside (to
// <file>.corrupt) so the next mutation's snapshot cannot overwrite the
// only copy of the previously committed state, and records the failure for
// /healthz. The moved file is the operator's recovery artifact.
func (cs *cityState) quarantineSnapshot(cause error) {
	src := store.SnapshotPath(cs.snapDir, cs.key)
	dst := src + ".corrupt"
	if err := os.Rename(src, dst); err != nil {
		cs.snapErr.Store(fmt.Sprintf("snapshot ignored (quarantine failed: %v): %v", err, cause))
		return
	}
	cs.snapErr.Store(fmt.Sprintf("snapshot ignored (moved to %s): %v", dst, cause))
}

// register allocates an id for the package under the registry lock.
func (cs *cityState) register(ps *packageState) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	id := cs.nextID
	cs.nextID++
	cs.packages[id] = ps
	return id
}

// clonePackage deep-copies a package at the CI level so snapshot encoding
// can run outside the package lock while the session keeps mutating the
// original. POIs are immutable and shared.
func clonePackage(tp *core.TravelPackage) *core.TravelPackage {
	cp := *tp
	cp.CIs = make([]*ci.CI, len(tp.CIs))
	for i, c := range tp.CIs {
		cc := *c
		cc.Items = append([]*poi.POI(nil), c.Items...)
		cp.CIs[i] = &cc
	}
	return &cp
}

// collectState assembles the city's full persistent state. It follows the
// lock hierarchy: the registry lock is released before any entity lock is
// taken.
func (cs *cityState) collectState() *store.ServerState {
	cs.mu.RLock()
	st := &store.ServerState{City: cs.city.Name, NextID: cs.nextID}
	groupIDs := make([]int, 0, len(cs.groups))
	groups := make(map[int]*groupState, len(cs.groups))
	for id, gs := range cs.groups {
		groupIDs = append(groupIDs, id)
		groups[id] = gs
	}
	pkgIDs := make([]int, 0, len(cs.packages))
	pkgs := make(map[int]*packageState, len(cs.packages))
	for id, ps := range cs.packages {
		pkgIDs = append(pkgIDs, id)
		pkgs[id] = ps
	}
	cs.mu.RUnlock()
	sort.Ints(groupIDs)
	sort.Ints(pkgIDs)

	for _, id := range groupIDs {
		gs := groups[id]
		gs.mu.Lock()
		profiles := make(map[string]*profile.Profile, len(gs.profiles))
		for name, p := range gs.profiles {
			profiles[name] = p // profiles are immutable once memoized
		}
		gs.mu.Unlock()
		st.Groups = append(st.Groups, store.GroupRecord{ID: id, Group: gs.group, Profiles: profiles})
	}
	for _, id := range pkgIDs {
		ps := pkgs[id]
		ps.mu.Lock()
		tp := clonePackage(ps.session.Package())
		ops := append([]interact.Op(nil), ps.session.Log()...)
		ps.mu.Unlock()
		st.Packages = append(st.Packages, store.PackageRecord{
			ID: id, GroupID: ps.groupID, Method: ps.method, Package: tp, Ops: ops,
		})
	}
	return st
}

// snapshot persists the city's state if persistence is enabled. Failures
// are recorded for /healthz rather than failing the mutation that
// triggered the snapshot — the in-memory state is already committed.
// Collection runs under snapMu so concurrent mutations cannot write their
// snapshots out of order (a stale collection overwriting a newer file
// would lose the newer mutation on reload); snapMu is always taken before
// cs.mu/entity locks, never after, so the hierarchy stays acyclic.
func (cs *cityState) snapshot() error {
	if cs.snapDir == "" {
		return nil
	}
	cs.snapMu.Lock()
	defer cs.snapMu.Unlock()
	st := cs.collectState()
	at, err := store.WriteSnapshot(cs.snapDir, cs.key, st)
	if err != nil {
		cs.snapErr.Store(err.Error())
		return err
	}
	cs.snapTime.Store(at.UnixNano())
	cs.snapErr.Store("")
	return nil
}

// evictionSafe reports whether the city can be unloaded without losing
// state: with persistence on, its last snapshot interaction must have
// succeeded — otherwise the in-memory registries are the only copy of
// committed mutations and eviction would silently 404 them.
func (cs *cityState) evictionSafe() bool {
	if cs.snapDir == "" {
		return true // no persistence configured: nothing to preserve
	}
	msg, _ := cs.snapErr.Load().(string)
	return msg == ""
}

// health summarizes the city for the health endpoint.
func (cs *cityState) health() cityHealth {
	cs.mu.RLock()
	groups, packages := len(cs.groups), len(cs.packages)
	cs.mu.RUnlock()
	h := cityHealth{
		Cache:        cs.engine.CacheStats(),
		Groups:       groups,
		Packages:     packages,
		LastSnapshot: lastSnapshotString(cs.snapTime.Load()),
	}
	if msg, _ := cs.snapErr.Load().(string); msg != "" {
		h.SnapshotErr = msg
	}
	return h
}
