// Package server exposes GroupTravel over HTTP — the backend a Figure 3
// style map GUI would talk to. It serves many cities from one process: a
// city-keyed registry (internal/registry) lazily loads each city's dataset,
// builds one shared concurrency-safe core.Engine per city, and evicts idle
// cities under a configurable cap, while per-city groups and packages
// snapshot through internal/store so a restart reconstructs the full
// serving state.
//
// # Routes
//
// City-scoped routes live under /cities/{city}/...; the legacy single-city
// /api/... routes are kept as aliases for the configured default city, so
// existing clients keep working unchanged:
//
//	GET  /healthz                 (alias /api/healthz)  liveness + engine/registry metrics
//	GET  /cities                                        known cities + residency
//	GET  /cities/{city}           (alias /api/city)     schema, POI counts, bounds
//	GET  /cities/{city}/pois      (alias /api/pois)
//	POST /cities/{city}/groups    (alias /api/groups)
//	GET  /cities/{city}/groups/{id}
//	POST /cities/{city}/packages
//	GET  /cities/{city}/packages/{id}
//	POST /cities/{city}/packages/{id}/ops
//	POST /cities/{city}/packages/{id}/refine
//
// # Concurrency
//
// Locking is sharded by entity rather than globalized: the registry
// serializes only city lookup/load/evict, each city's state has an RWMutex
// for its group/package registries and id allocation, each group carries
// its own lock for the memoized consensus profiles, and each package
// carries its own lock for its customization session. Package builds run
// on the city's shared core.Engine outside every lock — the engine is
// itself concurrency-safe with a bounded, singleflight cluster cache — so
// builds for different groups and different cities proceed fully in
// parallel; only operations on the same package serialize. Lock ordering:
// registry < city registries < entity locks, never taken upward, so the
// hierarchy is acyclic and deadlock-free. A request pins its city in the
// registry for its whole duration, so eviction can never unload a city
// with in-flight work.
//
// # Persistence
//
// With a snapshot directory configured, every mutation (group creation,
// package creation, customization op, refinement) appends one typed
// record to the city's write-ahead log — O(1) per mutation regardless of
// city size. The full-state snapshot is only rewritten at *compaction*:
// when the log crosses the configured record-count or byte thresholds,
// and on clean eviction. On load — first touch or reload after eviction —
// the snapshot is read back and the log suffix replayed on top, with
// package POIs re-resolved against the city dataset. Torn log tails are
// truncated at the last valid record, corrupt snapshots quarantine the
// snapshot+log pair; both surface on /healthz, and neither ever bricks a
// city. Persistence failures never fail the request that triggered them.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/registry"
	"grouptravel/internal/replicate"
	"grouptravel/internal/store"
	"grouptravel/internal/telemetry"
)

// Compaction defaults: how much write-ahead log a city accumulates before
// its snapshot is rewritten. 1k records keeps replay-on-load well under a
// snapshot write's own cost; 4 MiB bounds replay time for op-heavy logs
// with large packages.
const (
	DefaultCompactEvery = 1024
	DefaultCompactBytes = 4 << 20
)

// Options configures a multi-city server. At least one city must be
// reachable through DataDir or Cities.
type Options struct {
	// DataDir holds city datasets as <key>.json files (dataset.SaveJSON
	// format). Keys are the file base names.
	DataDir string
	// Cities are preloaded datasets served in addition to DataDir, keyed
	// by their lowercased name. They never hit the disk loader.
	Cities []*dataset.City
	// SnapshotDir enables persistence of groups/packages per city; empty
	// disables it.
	SnapshotDir string
	// MaxCities caps how many cities stay loaded at once (<= 0: no cap).
	// The cap is soft under load: cities with in-flight requests are
	// never evicted.
	MaxCities int
	// DefaultCity is the key the legacy /api routes serve; defaults to
	// the alphabetically first key.
	DefaultCity string
	// EngineCacheCap overrides each engine's cluster-cache bound
	// (core.DefaultCacheCap when 0, unbounded when < 0).
	EngineCacheCap int
	// WALSync selects when write-ahead-log appends reach stable storage.
	// The zero value is store.WALSyncAlways.
	WALSync store.WALSyncPolicy
	// CompactEvery rewrites a city's snapshot (and truncates its log)
	// once the log holds this many records. 0 means DefaultCompactEvery;
	// < 0 disables the record-count trigger.
	CompactEvery int
	// CompactBytes is the byte-size trigger for compaction. 0 means
	// DefaultCompactBytes; < 0 disables it.
	CompactBytes int64
	// PreloadCities are keys to load at boot through the registry's
	// singleflight path, so the first request pays no cold start. Unknown
	// keys or failing loads fail construction.
	PreloadCities []string
	// Follow runs this server as a read-only follower replicating every
	// city from the primary at this base URL (log shipping; see
	// internal/replicate). Mutating routes answer 403 until Promote.
	Follow string
	// Advertise is the base URL peers and front tiers reach this node at
	// (-advertise); it self-describes with it on /healthz so a router can
	// match topology entries against X-GT-Primary hints.
	Advertise string
	// Topology overrides the node-metadata source. Nil builds a
	// StaticTopology from Advertise and Follow — the normal boot path.
	// When set, Follow and Advertise are ignored.
	Topology Topology
	// FollowerID names this node on its primary's replication-slot table
	// (the ?fid= stream handshake): per-follower positions on the
	// primary's /healthz and /metrics, and compaction holds while this
	// follower lags. Defaults to Advertise; with both empty the node
	// streams anonymously (replication still works, it just isn't
	// slot-tracked).
	FollowerID string
	// FollowPoll is the replication tailer's poll interval: 0 selects
	// replicate.DefaultPollInterval; < 0 starts no background tailers —
	// the embedder drives Follower().Sync/CatchUp itself (tests).
	FollowPoll time.Duration
	// FollowMode selects how background tailers track the primary:
	// "stream" (the default, also "") holds a push stream open per city —
	// the primary flushes frames as commits land, so steady-state lag is
	// bounded by the network, not a poll interval; FollowPoll then only
	// paces reconnect attempts. "poll" restores the pre-streaming backoff
	// polling. Manual-sync embedders (FollowPoll < 0) are unaffected.
	FollowMode string
	// AccessLog emits one structured line per request (request id,
	// endpoint class, city, status, duration) when non-nil. Nil keeps the
	// request path silent — the benchmark/embedder default.
	AccessLog *slog.Logger
}

// Server routes requests to per-city engines and serving state.
type Server struct {
	reg          *registry.Registry[*cityState]
	defaultCity  string
	snapshotDir  string
	walSync      store.WALSyncPolicy
	compactEvery int64
	compactBytes int64

	// Replication role (see follower.go): topo carries the node metadata —
	// Upstream is empty on a primary; follower tails the upstream's logs;
	// promoted latches once Promote flips the process read-write
	// (promoteOnce runs the flip exactly once; promoted is the fast flag
	// handlers read).
	topo        Topology
	follower    *replicate.Follower
	promoteOnce sync.Once
	promoted    atomic.Bool

	// Replication epoch (epoch.go): the monotonic term that fences
	// deposed primaries. epochMu serializes adopt/bump + persist;
	// epochVal/epochOwner are the fast reads every request stamps;
	// fenced latches a writable node read-only once it observes a term
	// owned by someone else.
	epochMu    sync.Mutex
	epochVal   atomic.Int64
	epochOwner atomic.Value // string
	fenced     atomic.Bool

	// slots is the fan-out ledger (slots.go): per-follower stream
	// positions keyed by the ?fid= handshake, consulted by compaction.
	slots *slotTable

	// coldHeads caches non-resident cities' stream heads (stream.go), so
	// caught-up followers polling cold cities cost three stats, not a
	// snapshot parse. Entries self-invalidate via file signatures.
	coldHeads sync.Map // city key -> coldHead

	// notifiers holds one commit broadcast per city key (notify.go). They
	// live on the Server, not the cityState, so they survive eviction/
	// reload cycles and cold-city long-polls can wait on a city that is
	// not resident yet.
	notifiers sync.Map // city key -> *commitNotify

	// fleetVersion numbers every event that can change the GET /cities
	// listing — commits, frame applies, compactions, loads, evictions,
	// cold-head refreshes — and citiesCache serves the rendered listing
	// while the version holds (see cache.go). Routers poll /cities on
	// their health loop, making it the hottest read on the server.
	fleetVersion atomic.Int64
	citiesCache  fleetCache

	// metrics backs GET /metrics and every counter /healthz reports (one
	// value set, two surfaces — see telemetry.go); accessLog, when set,
	// gives the HTTP middleware its structured request log.
	metrics   *serverMetrics
	accessLog *slog.Logger
}

// New builds a single-city server with no persistence — the original
// constructor, kept for embedders and tests; the city becomes the default
// (and only) city.
func New(city *dataset.City) (*Server, error) {
	if city == nil {
		return nil, fmt.Errorf("server: nil city")
	}
	return NewMultiCity(Options{Cities: []*dataset.City{city}})
}

// cityKey derives the registry key for a preloaded city.
func cityKey(name string) string { return strings.ToLower(name) }

// scanDataDir lists the city keys a data directory can serve. Snapshot
// files (*.state.json) are not datasets and are skipped, so DataDir and
// SnapshotDir may point at the same directory.
func scanDataDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".state.json") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	// An empty directory is fine as long as preloaded Cities exist; the
	// caller enforces that at least one city is configured overall.
	return keys, nil
}

// NewMultiCity builds a server over a data directory and/or preloaded
// cities. A city cap requires persistence: eviction discards in-memory
// groups and packages, so without snapshots it would silently 404 every
// id a client holds for the evicted city.
func NewMultiCity(opts Options) (*Server, error) {
	if opts.MaxCities > 0 && opts.SnapshotDir == "" {
		return nil, fmt.Errorf("server: MaxCities = %d needs SnapshotDir (eviction would drop groups/packages)", opts.MaxCities)
	}
	preloaded := make(map[string]*dataset.City, len(opts.Cities))
	var keys []string
	for _, c := range opts.Cities {
		if c == nil {
			return nil, fmt.Errorf("server: nil city")
		}
		key := cityKey(c.Name)
		if _, dup := preloaded[key]; dup {
			return nil, fmt.Errorf("server: duplicate city %q", key)
		}
		preloaded[key] = c
		keys = append(keys, key)
	}
	if opts.DataDir != "" {
		scanned, err := scanDataDir(opts.DataDir)
		if err != nil {
			return nil, err
		}
		for _, k := range scanned {
			if _, dup := preloaded[k]; !dup {
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		if opts.DataDir != "" {
			return nil, fmt.Errorf("server: no city datasets (*.json) in %s and no preloaded cities", opts.DataDir)
		}
		return nil, fmt.Errorf("server: no cities configured")
	}
	sort.Strings(keys)

	topo := opts.Topology
	if topo == nil {
		topo = StaticTopology{AdvertiseURL: opts.Advertise, PrimaryURL: opts.Follow}
	}
	s := &Server{
		snapshotDir:  opts.SnapshotDir,
		walSync:      opts.WALSync,
		compactEvery: int64(opts.CompactEvery),
		compactBytes: opts.CompactBytes,
		// Set before the registry exists: city loads consult the role to
		// decide whether to build the replication mirror, and pull their
		// per-city counters off the metrics registry.
		topo:      topo,
		metrics:   newServerMetrics(),
		accessLog: opts.AccessLog,
	}
	s.epochOwner.Store("")
	s.slots = newSlotTable(s.metrics.reg)
	if s.compactEvery == 0 {
		s.compactEvery = DefaultCompactEvery
	}
	if s.compactBytes == 0 {
		s.compactBytes = DefaultCompactBytes
	}
	s.defaultCity = opts.DefaultCity
	if s.defaultCity == "" {
		s.defaultCity = keys[0]
	}
	found := false
	for _, k := range keys {
		if k == s.defaultCity {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("server: default city %q not among %v", s.defaultCity, keys)
	}

	reg, err := registry.New(keys, registry.Options[*cityState]{
		Load: func(key string) (*dataset.City, error) {
			if c, ok := preloaded[key]; ok {
				return c, nil
			}
			f, err := os.Open(filepath.Join(opts.DataDir, key+".json"))
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return dataset.LoadJSON(f)
		},
		NewState: func(c *registry.City[*cityState]) (*cityState, error) { return s.newCityState(c) },
		// A city whose latest persistence interaction failed holds the
		// only complete copy of its committed state: vetoing its eviction
		// keeps the failure recoverable instead of silently dropping
		// groups/packages.
		Evictable: func(c *registry.City[*cityState]) bool { return c.State.evictionSafe() },
		// Residency flips invalidate the cached /cities listing; both
		// hooks run after the flip is visible, so a fresh render always
		// observes the new residency.
		OnLoad: func(*registry.City[*cityState]) { s.fleetVersion.Add(1) },
		// A clean eviction compacts the city's log into its snapshot and
		// closes the log's file handle.
		OnEvict: func(c *registry.City[*cityState]) {
			c.State.handleEvict()
			s.fleetVersion.Add(1)
		},
		MaxCities:      opts.MaxCities,
		EngineCacheCap: opts.EngineCacheCap,
	})
	if err != nil {
		return nil, err
	}
	s.reg = reg
	// Recover the replication term before anything touches role state:
	// a node that was promoted (or fenced) before a restart must come
	// back that way, and city loads consult the role.
	if err := s.loadEpochs(keys); err != nil {
		return nil, err
	}
	if err := s.Preload(opts.PreloadCities...); err != nil {
		return nil, err
	}
	switch opts.FollowMode {
	case "", "stream", "poll":
	default:
		return nil, fmt.Errorf("server: unknown follow mode %q (want stream or poll)", opts.FollowMode)
	}
	if upstream := s.topo.Upstream(); upstream != "" && !s.promoted.Load() {
		s.follower = replicate.NewFollower(upstream, keys, followerTarget{s}, max(opts.FollowPoll, 0))
		fid := opts.FollowerID
		if fid == "" {
			fid = s.topo.Advertise()
		}
		s.follower.SetID(fid)
		s.follower.SetEpochInfo(s.Epoch)
		s.follower.SetOnEpoch(s.observeEpoch)
		if opts.FollowMode == "poll" {
			s.follower.SetStreaming(false)
		}
		if opts.FollowPoll >= 0 {
			s.follower.Start()
		}
	}
	// After the registry and follower exist: the scrape-time rows close
	// over both.
	s.registerScrapeFuncs(keys)
	return s, nil
}

// Preload warms cities through the registry's singleflight load path, in
// parallel, so their first request pays no dataset/engine/replay cold
// start. It returns the first load failure.
func (s *Server) Preload(keys ...string) error {
	if len(keys) == 0 {
		return nil
	}
	for _, key := range keys {
		if !s.reg.Has(key) {
			return fmt.Errorf("server: preload city %q not among %v", key, s.reg.Keys())
		}
	}
	errs := make(chan error, len(keys))
	for _, key := range keys {
		go func(key string) {
			_, release, err := s.reg.Acquire(key)
			if err != nil {
				errs <- fmt.Errorf("server: preload %q: %w", key, err)
				return
			}
			release()
			errs <- nil
		}(key)
	}
	var first error
	for range keys {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Registry exposes the underlying city registry (benchmarks and embedders).
func (s *Server) Registry() *registry.Registry[*cityState] { return s.reg }

// DefaultCity returns the key the legacy /api routes serve.
func (s *Server) DefaultCity() string { return s.defaultCity }

// Handler returns the HTTP handler with all routes registered: the
// city-scoped /cities tree plus the legacy /api aliases for the default
// city. The whole mux is wrapped in the telemetry middleware — per-class
// latency histograms, in-flight gauges, status counters, request-id echo
// (the shard echoes the id the router minted; it never mints its own, so
// the hot path stays allocation-free), and the opt-in access log.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /api/healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.HandleFunc("GET /cities", s.handleCities)

	city := func(h func(cs *cityState, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
		return s.withCity(h)
	}
	// Mutations go through the role gate: an unpromoted follower answers
	// 403 with a pointer at the primary instead of diverging from it.
	mutate := func(h func(cs *cityState, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
		return s.writable(s.withCity(h))
	}
	for _, prefix := range []string{"/api", "/cities/{city}"} {
		mux.HandleFunc("GET "+prefix+"/pois", city((*cityState).handlePOIs))
		mux.HandleFunc("POST "+prefix+"/groups", mutate((*cityState).handleCreateGroup))
		mux.HandleFunc("GET "+prefix+"/groups/{id}", city((*cityState).handleGetGroup))
		mux.HandleFunc("POST "+prefix+"/packages", mutate((*cityState).handleCreatePackage))
		mux.HandleFunc("GET "+prefix+"/packages/{id}", city((*cityState).handleGetPackage))
		mux.HandleFunc("POST "+prefix+"/packages/{id}/ops", mutate((*cityState).handleOps))
		mux.HandleFunc("POST "+prefix+"/packages/{id}/refine", mutate((*cityState).handleRefine))
		// The replication stream: followers tail it, and a follower serves
		// it too (from its own log), so replicas can cascade. Not routed
		// through withCity — it must never force a city load (see
		// stream.go).
		mux.HandleFunc("GET "+prefix+"/wal", s.handleWAL)
	}
	mux.HandleFunc("GET /api/city", city((*cityState).handleCity))
	mux.HandleFunc("GET /cities/{city}", city((*cityState).handleCity))
	mux.HandleFunc("POST /promote", s.handlePromote)
	mw := &telemetry.Middleware{Metrics: s.metrics.http, Log: s.accessLog}
	// The epoch sniffer wraps everything: any request can carry proof of
	// a newer term, and every response advertises this node's own.
	return s.noteEpochHeader(mw.Wrap(mux))
}

// withCity resolves the request's city — the {city} path value, or the
// default city on the legacy routes — acquires it from the registry
// (loading it on first touch) and pins it for the handler's duration.
func (s *Server) withCity(h func(cs *cityState, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("city")
		if key == "" {
			key = s.defaultCity
		}
		c, release, err := s.reg.Acquire(key)
		if err != nil {
			if !s.reg.Has(key) {
				writeErr(w, http.StatusNotFound, "unknown city %q", key)
				return
			}
			writeErr(w, http.StatusServiceUnavailable, "city %q unavailable: %v", key, err)
			return
		}
		defer release()
		if r.Method == http.MethodGet {
			// Stamp the applied sequence before the handler writes its
			// status line. Reading it here — before the handler renders —
			// makes the stamp a *lower* bound: a mutation landing between
			// stamp and render can only make the body fresher than the
			// header claims, never staler, which is the direction freshness
			// validation is safe in. appliedSeq reports the durable head,
			// never the pinPrimarySeq sentinel, so a failed append can
			// never inflate the stamp.
			if seq := c.State.appliedSeq(); seq > 0 {
				w.Header().Set(HeaderAppliedSeq, strconv.FormatInt(seq, 10))
			}
		}
		h(c.State, w, r)
	}
}

// --- helpers ---

// writeJSON renders v through a pooled buffer (no per-request encoder
// allocation) and writes it with Content-Length set. The rendered bytes
// are identical to json.Encoder output (trailing newline included), so
// cached and uncached responses are indistinguishable on the wire.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_ = json.NewEncoder(buf).Encode(v)
	writeRawJSON(w, status, buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		jsonBufPool.Put(buf)
	}
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// --- health & cities ---

// cityHealth is the per-loaded-city slice of the health report.
type cityHealth struct {
	Cache        core.CacheStats `json:"clusterCache"`
	Groups       int             `json:"groups"`
	Packages     int             `json:"packages"`
	BuildDedups  int64           `json:"buildDedups"`            // builds served from an identical in-flight request
	LastSnapshot string          `json:"lastSnapshot,omitempty"` // RFC3339; empty when never compacted
	PersistErr   string          `json:"persistenceError,omitempty"`
	ByteCache    byteCacheHealth `json:"byteCache"` // rendered-response cache (cache.go)
	WAL          *walHealth      `json:"wal,omitempty"`
	// Replication is the follower's position against the primary for this
	// city: replicaLag in records and bytes, handoff/retry counters, and
	// the primary's bytes-since-compaction gauge. Followers only.
	Replication *replicate.Lag `json:"replication,omitempty"`
}

// walHealth is the write-ahead-log slice of a city's health: the log's
// current length (the replay debt a restart would pay), fsync behavior,
// and what the last recovery found.
type walHealth struct {
	Records         int64   `json:"records"`
	Bytes           int64   `json:"bytes"` // bytes appended since the last compaction
	Fsyncs          int64   `json:"fsyncs"`
	LastFsyncMicros int64   `json:"lastFsyncMicros"`
	Compactions     int64   `json:"compactions"`
	Replayed        int     `json:"replayedRecords"` // records replayed at load
	ReplayMillis    float64 `json:"replayMillis"`
	ReplayTruncated string  `json:"replayTruncated,omitempty"` // non-empty when a torn tail was cut
}

type healthResponse struct {
	Status string `json:"status"`
	// City preserves the legacy single-city health field: the default
	// city's dataset name when it is resident, its key otherwise (reading
	// health must not force a dataset load).
	City        string                `json:"city"`
	DefaultCity string                `json:"defaultCity"`
	Role        string                `json:"role"`                // primary | follower | promoted | fenced
	Primary     string                `json:"primary,omitempty"`   // the primary's URL on (ex-)followers
	Advertise   string                `json:"advertise,omitempty"` // the URL this node self-describes as
	Registry    registry.Stats        `json:"registry"`
	Cities      map[string]cityHealth `json:"cities"` // loaded cities only
	Persistence bool                  `json:"persistence"`
	WALSync     string                `json:"walSync,omitempty"` // fsync policy when persistence is on
	// Epoch is the node's replication term and EpochPrimary the term
	// owner's URL (absent before any promotion); ReplicationSlots are the
	// per-follower stream positions this node tracks as a primary.
	Epoch            int64        `json:"epoch,omitempty"`
	EpochPrimary     string       `json:"epochPrimary,omitempty"`
	ReplicationSlots []slotHealth `json:"replicationSlots,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := healthResponse{
		Status:      "ok",
		City:        s.defaultCity,
		DefaultCity: s.defaultCity,
		Role:        s.Role(),
		Primary:     s.topo.Upstream(),
		Advertise:   s.topo.Advertise(),
		Registry:    s.reg.Stats(),
		Cities:      map[string]cityHealth{},
		Persistence: s.snapshotDir != "",
	}
	if resp.Persistence {
		resp.WALSync = s.walSync.String()
	}
	resp.Epoch, resp.EpochPrimary = s.Epoch()
	resp.ReplicationSlots = s.slots.snapshot()
	s.reg.Range(func(c *registry.City[*cityState]) {
		h := c.State.health()
		if s.follower != nil {
			if lag, ok := s.follower.Lag(c.Key); ok {
				h.Replication = &lag
			}
		}
		resp.Cities[c.Key] = h
		if c.Key == s.defaultCity {
			resp.City = c.City.Name
		}
	})
	writeJSON(w, http.StatusOK, resp)
}

// citySummary is one row of GET /cities. WALBytes is the city's
// bytes-since-compaction — the write-ahead-log backpressure gauge a front
// tier can route on (a large value means an expensive replay-on-reload
// and a mutation-hot city); 0 for unloaded cities or without persistence.
// AppliedSeq is the city's last committed (primary) or applied (follower)
// WAL sequence — the freshness gauge a front tier compares session tokens
// against, in the same cheap call; 0 means unknown (no persistence, or a
// non-resident city whose stream head was never served).
type citySummary struct {
	Key        string `json:"key"`
	Loaded     bool   `json:"loaded"`
	Default    bool   `json:"default"`
	WALBytes   int64  `json:"walBytes,omitempty"`
	AppliedSeq int64  `json:"appliedSeq,omitempty"`
}

func (s *Server) handleCities(w http.ResponseWriter, _ *http.Request) {
	// Version captured before the listing is assembled: an event landing
	// mid-render bumps the version and keeps the stale render out of the
	// cache (it is still a correct response for its moment in time).
	v := s.fleetVersion.Load()
	if body, ok := s.citiesCache.get(v); ok {
		writeRawJSON(w, http.StatusOK, body)
		return
	}
	walBytes := map[string]int64{}
	applied := map[string]int64{}
	s.reg.Range(func(c *registry.City[*cityState]) {
		if c.State.wal != nil {
			walBytes[c.Key] = c.State.wal.Stats().Bytes
		}
		applied[c.Key] = c.State.appliedSeq()
	})
	var out []citySummary
	for _, key := range s.reg.Keys() {
		seq, ok := applied[key]
		if !ok {
			// Non-resident city: answer from the cold stream-head cache
			// when one is established (stream.go) rather than force-loading
			// the city — stale is conservative, a load here would let a
			// poller defeat the LRU cap.
			if h, hit := s.coldHeads.Load(key); hit {
				seq = h.(coldHead).last
			}
		}
		out = append(out, citySummary{
			Key:        key,
			Loaded:     s.reg.Loaded(key),
			Default:    key == s.defaultCity,
			WALBytes:   walBytes[key],
			AppliedSeq: seq,
		})
	}
	body := renderJSON(out)
	s.citiesCache.put(v, body)
	writeRawJSON(w, http.StatusOK, body)
}

// notifier returns the city's commit broadcast, creating it on first use.
func (s *Server) notifier(key string) *commitNotify {
	if n, ok := s.notifiers.Load(key); ok {
		return n.(*commitNotify)
	}
	n, _ := s.notifiers.LoadOrStore(key, newCommitNotify())
	return n.(*commitNotify)
}

// lastSnapshotString formats a snapshot instant for health reports.
func lastSnapshotString(nanos int64) string {
	if nanos == 0 {
		return ""
	}
	return time.Unix(0, nanos).UTC().Format(time.RFC3339Nano)
}
