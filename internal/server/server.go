// Package server exposes GroupTravel over HTTP — the backend a Figure 3
// style map GUI would talk to. It is a thin, concurrency-safe layer over
// the engine: groups are registered from member ratings, packages are
// built per group with a chosen consensus method, and the §3.3
// customization operators are applied through per-package sessions whose
// logs drive profile refinement.
//
// # Concurrency
//
// Locking is sharded by entity rather than globalized: a sync.RWMutex
// guards only the group/package registries (map lookups and id
// allocation), each group carries its own lock for the memoized consensus
// profiles, and each package carries its own lock for its customization
// session. Package builds run on the shared core.Engine outside every
// lock — the engine is itself concurrency-safe with a singleflight cluster
// cache — so builds for different groups (and reads of unrelated packages)
// proceed fully in parallel; only operations on the same package
// serialize. Lock ordering: the registry lock is never held while taking
// an entity lock, and entity locks are never held while taking the
// registry lock, so the hierarchy is flat and deadlock-free.
//
// All state is in memory (the store package provides durable formats; a
// deployment would snapshot through it). Handlers are plain net/http on a
// ServeMux, constructed by New for use with httptest in tests or
// http.ListenAndServe in cmd/grouptravel-server.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"grouptravel/internal/ci"
	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/route"
)

// Server hosts one city and its groups/packages.
type Server struct {
	city   *dataset.City
	engine *core.Engine

	// mu guards only the registries and id allocation; per-entity state is
	// guarded by the entity's own lock (see the package comment).
	mu       sync.RWMutex
	groups   map[int]*groupState
	packages map[int]*packageState
	nextID   int
}

// groupState is one registered group. group is immutable after creation;
// mu guards the consensus-profile memo.
type groupState struct {
	group *profile.Group

	mu       sync.Mutex
	profiles map[string]*profile.Profile // consensus name -> aggregated profile
}

// profileFor returns the group's aggregated profile under the named
// consensus method, memoizing unweighted aggregations (weighted requests
// are caller-specific and computed fresh).
func (gs *groupState) profileFor(name string, method consensus.Method, weights []float64) (*profile.Profile, error) {
	if len(weights) > 0 {
		return consensus.GroupProfileWeighted(gs.group, method, weights)
	}
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gp, ok := gs.profiles[name]; ok {
		return gp, nil
	}
	gp, err := consensus.GroupProfile(gs.group, method)
	if err != nil {
		return nil, err
	}
	gs.profiles[name] = gp
	return gp, nil
}

// packageState is one built package; mu serializes access to the
// customization session (interact.Session is not concurrency-safe).
type packageState struct {
	groupID int
	method  string

	mu      sync.Mutex
	session *interact.Session
}

// New builds a server over a city. The engine is shared by all requests
// without serialization — core.Engine is safe for concurrent use.
func New(city *dataset.City) (*Server, error) {
	engine, err := core.NewEngine(city)
	if err != nil {
		return nil, err
	}
	return &Server{
		city:     city,
		engine:   engine,
		groups:   make(map[int]*groupState),
		packages: make(map[int]*packageState),
		nextID:   1,
	}, nil
}

// Handler returns the HTTP handler with all routes registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/healthz", s.handleHealth)
	mux.HandleFunc("GET /api/city", s.handleCity)
	mux.HandleFunc("GET /api/pois", s.handlePOIs)
	mux.HandleFunc("POST /api/groups", s.handleCreateGroup)
	mux.HandleFunc("GET /api/groups/{id}", s.handleGetGroup)
	mux.HandleFunc("POST /api/packages", s.handleCreatePackage)
	mux.HandleFunc("GET /api/packages/{id}", s.handleGetPackage)
	mux.HandleFunc("POST /api/packages/{id}/ops", s.handleOps)
	mux.HandleFunc("POST /api/packages/{id}/refine", s.handleRefine)
	return mux
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "city": s.city.Name})
}

// --- city & POIs ---

type cityResponse struct {
	Name   string              `json:"name"`
	Counts map[string]int      `json:"poiCounts"`
	Schema map[string][]string `json:"schema"`
	Bounds map[string]float64  `json:"bounds"`
}

func (s *Server) handleCity(w http.ResponseWriter, _ *http.Request) {
	counts := s.city.POIs.CategoryCounts()
	resp := cityResponse{
		Name:   s.city.Name,
		Counts: map[string]int{},
		Schema: map[string][]string{},
	}
	for _, c := range poi.Categories {
		resp.Counts[c.String()] = counts[c]
		resp.Schema[c.String()] = s.city.Schema.Labels(c)
	}
	b := s.city.POIs.Bounds()
	resp.Bounds = map[string]float64{"lat": b.Lat, "lon": b.Lon, "width": b.Width, "height": b.Height}
	writeJSON(w, http.StatusOK, resp)
}

type poiResponse struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	Cat  string  `json:"category"`
	Lat  float64 `json:"lat"`
	Lon  float64 `json:"lon"`
	Type string  `json:"type"`
	Cost float64 `json:"cost"`
}

func toPOIResponse(p *poi.POI) poiResponse {
	return poiResponse{
		ID: p.ID, Name: p.Name, Cat: p.Cat.String(),
		Lat: p.Coord.Lat, Lon: p.Coord.Lon, Type: p.Type, Cost: p.Cost,
	}
}

// handlePOIs lists POIs, optionally filtered by category and/or nearest to
// a point: /api/pois?cat=rest&near=48.85,2.35&k=10
func (s *Server) handlePOIs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var cat *poi.Category
	if cs := q.Get("cat"); cs != "" {
		c, err := poi.ParseCategory(cs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad cat: %v", err)
			return
		}
		cat = &c
	}
	k := 20
	if ks := q.Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil || n < 1 || n > 500 {
			writeErr(w, http.StatusBadRequest, "bad k %q", ks)
			return
		}
		k = n
	}
	var out []poiResponse
	if near := q.Get("near"); near != "" {
		parts := strings.Split(near, ",")
		if len(parts) != 2 {
			writeErr(w, http.StatusBadRequest, "near must be lat,lon")
			return
		}
		lat, err1 := strconv.ParseFloat(parts[0], 64)
		lon, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil {
			writeErr(w, http.StatusBadRequest, "near must be lat,lon")
			return
		}
		for _, p := range s.city.POIs.Nearest(geo.Point{Lat: lat, Lon: lon}, k, cat, nil) {
			out = append(out, toPOIResponse(p))
		}
	} else {
		pois := s.city.POIs.All()
		if cat != nil {
			pois = s.city.POIs.ByCategory(*cat)
		}
		for i, p := range pois {
			if i >= k {
				break
			}
			out = append(out, toPOIResponse(p))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// --- groups ---

type createGroupRequest struct {
	// Members' ratings per category: 0-5 per type/topic, dimensions per
	// GET /api/city's schema.
	Members []map[string][]float64 `json:"members"`
}

type groupResponse struct {
	ID         int     `json:"id"`
	Size       int     `json:"size"`
	Uniformity float64 `json:"uniformity"`
	MedianUser int     `json:"medianUser"`
}

func (s *Server) handleCreateGroup(w http.ResponseWriter, r *http.Request) {
	var req createGroupRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	if len(req.Members) == 0 {
		writeErr(w, http.StatusBadRequest, "a group needs at least one member")
		return
	}
	members := make([]*profile.Profile, 0, len(req.Members))
	for i, m := range req.Members {
		ratings := map[poi.Category][]float64{}
		for cs, vals := range m {
			c, err := poi.ParseCategory(cs)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "member %d: %v", i, err)
				return
			}
			ratings[c] = vals
		}
		p, err := profile.FromRatings(s.city.Schema, ratings)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "member %d: %v", i, err)
			return
		}
		members = append(members, p)
	}
	g, err := profile.NewGroup(s.city.Schema, members)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.groups[id] = &groupState{group: g, profiles: map[string]*profile.Profile{}}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, groupResponse{
		ID: id, Size: g.Size(), Uniformity: g.Uniformity(), MedianUser: g.MedianUser(),
	})
}

func (s *Server) groupByID(idStr string) (*groupState, int, error) {
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return nil, 0, fmt.Errorf("bad group id %q", idStr)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	gs, ok := s.groups[id]
	if !ok {
		return nil, 0, fmt.Errorf("group %d not found", id)
	}
	return gs, id, nil
}

func (s *Server) handleGetGroup(w http.ResponseWriter, r *http.Request) {
	gs, id, err := s.groupByID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, groupResponse{
		ID: id, Size: gs.group.Size(), Uniformity: gs.group.Uniformity(), MedianUser: gs.group.MedianUser(),
	})
}

// --- packages ---

type createPackageRequest struct {
	GroupID   int       `json:"group"`
	Consensus string    `json:"consensus"` // avg | leastmisery | pairwise | variance
	K         int       `json:"k"`
	Query     *queryReq `json:"query,omitempty"`
	Weights   []float64 `json:"weights,omitempty"` // optional per-member weights
}

type queryReq struct {
	Acco, Trans, Rest, Attr int
	Budget                  float64 // <= 0 means unlimited
}

type packageResponse struct {
	ID    int       `json:"id"`
	City  string    `json:"city"`
	Query string    `json:"query"`
	Days  []dayJSON `json:"days"`
	Dims  dimsJSON  `json:"dimensions"`
	Valid bool      `json:"valid"`
}

type dayJSON struct {
	Centroid geo.Point     `json:"centroid"`
	Cost     float64       `json:"cost"`
	WalkKm   float64       `json:"walkKm,omitempty"`
	Items    []poiResponse `json:"items"`
}

type dimsJSON struct {
	Representativity float64 `json:"representativity"`
	WithinCIKm       float64 `json:"withinCIKm"`
	Personalization  float64 `json:"personalization"`
}

func methodByName(name string) (consensus.Method, error) {
	switch strings.ToLower(name) {
	case "", "pairwise":
		return consensus.PairwiseDis, nil
	case "avg", "average":
		return consensus.AveragePref, nil
	case "leastmisery", "lm":
		return consensus.LeastMisery, nil
	case "variance":
		return consensus.VarianceDis, nil
	case "mostpleasure":
		return consensus.MostPleasure, nil
	case "avgnomisery":
		return consensus.AvgNoMisery, nil
	default:
		return consensus.Method{}, fmt.Errorf("unknown consensus %q", name)
	}
}

func (s *Server) handleCreatePackage(w http.ResponseWriter, r *http.Request) {
	var req createPackageRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	gs, _, err := s.groupByID(strconv.Itoa(req.GroupID))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	method, err := methodByName(req.Consensus)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := query.Default()
	if req.Query != nil {
		budget := req.Query.Budget
		if budget <= 0 {
			budget = query.Default().Budget
		}
		q, err = query.New(req.Query.Acco, req.Query.Trans, req.Query.Rest, req.Query.Attr, budget)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	k := req.K
	if k == 0 {
		k = 5
	}
	if k < 1 || k > 30 {
		writeErr(w, http.StatusBadRequest, "k = %d out of range [1,30]", k)
		return
	}

	gp, err := gs.profileFor(strings.ToLower(req.Consensus), method, req.Weights)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The build runs outside every lock: the engine is concurrency-safe,
	// so packages for different groups (or different queries) construct in
	// parallel.
	tp, err := s.engine.Build(gp, q, core.DefaultParams(k))
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	sess, err := interact.NewSession(s.city, tp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	ps := &packageState{groupID: req.GroupID, method: strings.ToLower(req.Consensus), session: sess}
	id := s.register(ps)
	ps.mu.Lock()
	resp := s.renderPackage(id, ps, false)
	ps.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

// register allocates an id for the package under the registry lock.
func (s *Server) register(ps *packageState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.packages[id] = ps
	return id
}

// renderPackage renders a package; the caller holds ps.mu.
func (s *Server) renderPackage(id int, ps *packageState, routes bool) packageResponse {
	tp := ps.session.Package()
	resp := packageResponse{ID: id, City: tp.City, Query: tp.Query.String(), Valid: tp.Valid()}
	d := tp.Measure()
	resp.Dims = dimsJSON{
		Representativity: d.Representativity,
		WithinCIKm:       d.RawDistance,
		Personalization:  d.Personalization,
	}
	for _, c := range tp.CIs {
		day := dayJSON{Centroid: c.Centroid, Cost: c.Cost()}
		items := c.Items
		if routes {
			if plan, err := route.PlanDay(c); err == nil {
				ordered := make([]*poi.POI, len(plan.Order))
				for i, idx := range plan.Order {
					ordered[i] = c.Items[idx]
				}
				items = ordered
				day.WalkKm = plan.LengthKm
			}
		}
		for _, it := range items {
			day.Items = append(day.Items, toPOIResponse(it))
		}
		resp.Days = append(resp.Days, day)
	}
	return resp
}

func (s *Server) packageByID(idStr string) (*packageState, int, error) {
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return nil, 0, fmt.Errorf("bad package id %q", idStr)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ps, ok := s.packages[id]
	if !ok {
		return nil, 0, fmt.Errorf("package %d not found", id)
	}
	return ps, id, nil
}

func (s *Server) handleGetPackage(w http.ResponseWriter, r *http.Request) {
	ps, id, err := s.packageByID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	routes := r.URL.Query().Get("routes") == "1"
	ps.mu.Lock()
	resp := s.renderPackage(id, ps, routes)
	ps.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// --- customization operators ---

type opRequest struct {
	Member int       `json:"member"`
	Op     string    `json:"op"` // remove | add | replace | generate
	CI     int       `json:"ci"`
	POI    int       `json:"poi"`
	Rect   *geo.Rect `json:"rect,omitempty"`
}

type opResponse struct {
	Applied     bool         `json:"applied"`
	Replacement *poiResponse `json:"replacement,omitempty"`
	NewCI       *dayJSON     `json:"newCI,omitempty"`
}

func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	ps, _, err := s.packageByID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	var req opRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	s.mu.RLock()
	gs := s.groups[ps.groupID]
	s.mu.RUnlock()
	if req.Member < 0 || (gs != nil && req.Member >= gs.group.Size()) {
		writeErr(w, http.StatusBadRequest, "member %d outside the group", req.Member)
		return
	}
	// Session mutations serialize on the package's own lock; operations on
	// other packages proceed concurrently.
	ps.mu.Lock()
	defer ps.mu.Unlock()
	resp := opResponse{}
	switch strings.ToLower(req.Op) {
	case "remove":
		err = ps.session.Remove(req.Member, req.CI, req.POI)
	case "add":
		err = ps.session.Add(req.Member, req.CI, req.POI)
	case "replace":
		var repl *poi.POI
		repl, err = ps.session.Replace(req.Member, req.CI, req.POI)
		if err == nil {
			pr := toPOIResponse(repl)
			resp.Replacement = &pr
		}
	case "generate":
		if req.Rect == nil {
			writeErr(w, http.StatusBadRequest, "generate requires rect")
			return
		}
		var newCI *ci.CI
		newCI, err = ps.session.Generate(req.Member, *req.Rect)
		if err == nil {
			day := dayJSON{Centroid: newCI.Centroid, Cost: newCI.Cost()}
			for _, it := range newCI.Items {
				day.Items = append(day.Items, toPOIResponse(it))
			}
			resp.NewCI = &day
		}
	default:
		writeErr(w, http.StatusBadRequest, "unknown op %q", req.Op)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp.Applied = true
	writeJSON(w, http.StatusOK, resp)
}

// --- refinement ---

type refineRequest struct {
	Strategy string `json:"strategy"` // batch | individual
	Rebuild  bool   `json:"rebuild"`  // also build a new package from the refined profile
	K        int    `json:"k"`
}

type refineResponse struct {
	Strategy   string           `json:"strategy"`
	Operations int              `json:"operations"`
	NewPackage *packageResponse `json:"newPackage,omitempty"`
}

func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	ps, _, err := s.packageByID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	var req refineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	s.mu.RLock()
	gs, ok := s.groups[ps.groupID]
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusConflict, "group %d no longer exists", ps.groupID)
		return
	}
	method, err := methodByName(ps.method)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Snapshot the session and compute the refined profile under the
	// package lock (the log is shared mutable state); the rebuild below
	// runs on the engine without any lock.
	ps.mu.Lock()
	tp := ps.session.Package()
	base := tp.Group
	if base == nil {
		ps.mu.Unlock()
		writeErr(w, http.StatusUnprocessableEntity, "package was not personalized")
		return
	}
	ops := ps.session.Log()

	var refined *profile.Profile
	switch strings.ToLower(req.Strategy) {
	case "", "batch":
		refined, err = interact.RefineBatch(base, ops)
		req.Strategy = "batch"
	case "individual":
		_, refined, err = interact.RefineIndividual(gs.group, method, ops)
	default:
		ps.mu.Unlock()
		writeErr(w, http.StatusBadRequest, "unknown strategy %q", req.Strategy)
		return
	}
	nOps := len(ops)
	kFallback := len(tp.CIs)
	q := tp.Query
	ps.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := refineResponse{Strategy: strings.ToLower(req.Strategy), Operations: nOps}
	if req.Rebuild {
		k := req.K
		if k == 0 {
			k = kFallback
		}
		newTP, err := s.engine.Build(refined, q, core.DefaultParams(k))
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		sess, err := interact.NewSession(s.city, newTP)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		nps := &packageState{groupID: ps.groupID, method: ps.method, session: sess}
		id := s.register(nps)
		nps.mu.Lock()
		pr := s.renderPackage(id, nps, false)
		nps.mu.Unlock()
		resp.NewPackage = &pr
	}
	writeJSON(w, http.StatusOK, resp)
}
