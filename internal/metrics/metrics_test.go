package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"grouptravel/internal/ci"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

func mkCI(centroid geo.Point, coords []geo.Point) *ci.CI {
	items := make([]*poi.POI, len(coords))
	for i, c := range coords {
		items[i] = &poi.POI{ID: i, Cat: poi.Attr, Coord: c, Vector: vec.Vector{1, 0}}
	}
	return &ci.CI{Items: items, Centroid: centroid}
}

func TestRepresentativityPairs(t *testing.T) {
	a := mkCI(geo.Point{Lat: 48.80, Lon: 2.30}, nil)
	b := mkCI(geo.Point{Lat: 48.90, Lon: 2.30}, nil)
	c := mkCI(geo.Point{Lat: 48.85, Lon: 2.40}, nil)
	got := Representativity([]*ci.CI{a, b, c})
	want := geo.Equirectangular(a.Centroid, b.Centroid) +
		geo.Equirectangular(a.Centroid, c.Centroid) +
		geo.Equirectangular(b.Centroid, c.Centroid)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("representativity = %v, want %v", got, want)
	}
}

func TestRepresentativitySpreadBeatsCollapse(t *testing.T) {
	spread := []*ci.CI{
		mkCI(geo.Point{Lat: 48.80, Lon: 2.25}, nil),
		mkCI(geo.Point{Lat: 48.92, Lon: 2.42}, nil),
	}
	collapsed := []*ci.CI{
		mkCI(geo.Point{Lat: 48.86, Lon: 2.34}, nil),
		mkCI(geo.Point{Lat: 48.861, Lon: 2.341}, nil),
	}
	if Representativity(spread) <= Representativity(collapsed) {
		t.Fatal("spread centroids not more representative than collapsed ones")
	}
}

func TestCohesivenessCompactBeatsScattered(t *testing.T) {
	compact := []*ci.CI{mkCI(geo.Point{}, []geo.Point{
		{Lat: 48.860, Lon: 2.340}, {Lat: 48.861, Lon: 2.341}, {Lat: 48.862, Lon: 2.342},
	})}
	scattered := []*ci.CI{mkCI(geo.Point{}, []geo.Point{
		{Lat: 48.80, Lon: 2.25}, {Lat: 48.92, Lon: 2.42}, {Lat: 48.86, Lon: 2.30},
	})}
	s := math.Max(RawDistanceSum(compact), RawDistanceSum(scattered))
	if Cohesiveness(compact, s) <= Cohesiveness(scattered, s) {
		t.Fatal("compact CI not more cohesive than scattered CI")
	}
}

func TestCohesivenessIsSMinusRaw(t *testing.T) {
	cis := []*ci.CI{mkCI(geo.Point{}, []geo.Point{
		{Lat: 48.86, Lon: 2.34}, {Lat: 48.87, Lon: 2.35},
	})}
	raw := RawDistanceSum(cis)
	if got := Cohesiveness(cis, 100); math.Abs(got-(100-raw)) > 1e-12 {
		t.Fatalf("cohesiveness = %v, want %v", got, 100-raw)
	}
}

func testProfile() *profile.Profile {
	s := poi.NewSchema([]string{"h"}, []string{"t"}, []string{"a", "b"}, []string{"a", "b"})
	p := profile.New(s)
	_ = p.SetVector(poi.Attr, vec.Vector{1, 0})
	return p
}

func TestPersonalizationMatchesCosineSum(t *testing.T) {
	g := testProfile()
	// Two attraction items: one perfectly aligned, one orthogonal.
	aligned := &poi.POI{ID: 1, Cat: poi.Attr, Vector: vec.Vector{1, 0}}
	orthogonal := &poi.POI{ID: 2, Cat: poi.Attr, Vector: vec.Vector{0, 1}}
	cis := []*ci.CI{{Items: []*poi.POI{aligned, orthogonal}}}
	if got := Personalization(cis, g); math.Abs(got-1) > 1e-12 {
		t.Fatalf("personalization = %v, want 1 (1 + 0)", got)
	}
}

func TestPersonalizationNilProfile(t *testing.T) {
	cis := []*ci.CI{mkCI(geo.Point{}, []geo.Point{{Lat: 48.86, Lon: 2.34}})}
	if got := Personalization(cis, nil); got != 0 {
		t.Fatalf("nil-profile personalization = %v", got)
	}
}

func TestMinMaxOf(t *testing.T) {
	mm := MinMaxOf([]float64{3, 1, 4, 1, 5})
	if mm.Min != 1 || mm.Max != 5 {
		t.Fatalf("MinMax = %+v", mm)
	}
}

func TestMinMaxOfPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	MinMaxOf(nil)
}

func TestNormalizeBoundsQuick(t *testing.T) {
	src := rng.New(1)
	f := func(_ uint8) bool {
		n := 2 + src.Intn(20)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = src.Range(-100, 100)
		}
		mm := MinMaxOf(vals)
		for _, v := range vals {
			nv := mm.Normalize(v)
			if nv < 0 || nv > 1 {
				return false
			}
		}
		// Extremes map to 0 and 1 when the range is non-degenerate.
		if mm.Max > mm.Min {
			if mm.Normalize(mm.Min) != 0 || mm.Normalize(mm.Max) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeDegenerateRange(t *testing.T) {
	mm := MinMax{Min: 5, Max: 5}
	if mm.Normalize(5) != 0 {
		t.Fatalf("degenerate normalize = %v", mm.Normalize(5))
	}
}

func TestNormalizeClampsOutside(t *testing.T) {
	mm := MinMax{Min: 0, Max: 10}
	if mm.Normalize(-5) != 0 || mm.Normalize(15) != 1 {
		t.Fatal("out-of-range values not clamped")
	}
}

func TestMeasureBundles(t *testing.T) {
	g := testProfile()
	cis := []*ci.CI{
		mkCI(geo.Point{Lat: 48.80, Lon: 2.30}, []geo.Point{{Lat: 48.80, Lon: 2.30}, {Lat: 48.81, Lon: 2.31}}),
		mkCI(geo.Point{Lat: 48.90, Lon: 2.40}, []geo.Point{{Lat: 48.90, Lon: 2.40}}),
	}
	d := Measure(cis, g)
	if math.Abs(d.Representativity-Representativity(cis)) > 1e-12 ||
		math.Abs(d.RawDistance-RawDistanceSum(cis)) > 1e-12 ||
		math.Abs(d.Personalization-Personalization(cis, g)) > 1e-12 {
		t.Fatalf("Measure disagrees with individual metrics: %+v", d)
	}
}

func TestMinMaxString(t *testing.T) {
	mm := MinMax{Min: 19.29, Max: 221.79}
	if mm.String() != "[19.29, 221.79]" {
		t.Fatalf("String = %q", mm.String())
	}
}
