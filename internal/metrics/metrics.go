// Package metrics implements the three optimization dimensions GroupTravel
// reports for every travel package (§4.2):
//
//	representativity (Eq. 2) — how far apart the CIs' centroids are;
//	cohesiveness     (Eq. 3) — how geographically compact each CI is;
//	personalization  (Eq. 4) — how well CI items match the group profile;
//
// plus the min-max normalization used to bring all dimensions into [0,1]
// before they are tabulated (§4.3.1).
package metrics

import (
	"fmt"
	"math"

	"grouptravel/internal/ci"
	"grouptravel/internal/geo"
	"grouptravel/internal/profile"
	"grouptravel/internal/vec"
)

// Representativity is Eq. 2: the summed pairwise Euclidean distance
// between CI centroids, in km. The farther the CIs are from each other,
// the better the package covers the city.
func Representativity(cis []*ci.CI) float64 {
	sum := 0.0
	for i := 0; i < len(cis); i++ {
		for j := i + 1; j < len(cis); j++ {
			sum += geo.Equirectangular(cis[i].Centroid, cis[j].Centroid)
		}
	}
	return sum
}

// RawDistanceSum is the inner term of Eq. 3: Σ_{CI∈TP} Σ_{i,j∈CI} d(i,j)
// in km. Lower means more compact CIs.
func RawDistanceSum(cis []*ci.CI) float64 {
	sum := 0.0
	for _, c := range cis {
		sum += c.PairwiseDistanceSum()
	}
	return sum
}

// Cohesiveness is Eq. 3: S − Σ_{CI∈TP} Σ_{i,j∈CI} d(i,j), where the
// constant S is the maximum possible (in practice: largest observed)
// aggregate distance — the paper uses S = 221.79 for its synthetic runs.
// Choose S as the max RawDistanceSum over the experiment's packages.
func Cohesiveness(cis []*ci.CI, s float64) float64 {
	return s - RawDistanceSum(cis)
}

// Personalization is Eq. 4: Σ_{CI∈TP} Σ_{i∈CI} cos(®i, ®g), matching each
// item against the group-profile vector of the item's own category.
func Personalization(cis []*ci.CI, g *profile.Profile) float64 {
	if g == nil {
		return 0
	}
	sum := 0.0
	for _, c := range cis {
		for _, it := range c.Items {
			sum += vec.Cosine(it.Vector, g.Vector(it.Cat))
		}
	}
	return sum
}

// MinMax holds the observed range of one optimization dimension across an
// experiment, for the §4.3.1 normalization
// normalized(o) = (value(o) − min(o)) / (max(o) − min(o)).
type MinMax struct {
	Min float64
	Max float64
}

// MinMaxOf scans values for their range. It panics on an empty slice.
func MinMaxOf(values []float64) MinMax {
	if len(values) == 0 {
		panic("metrics: MinMaxOf of empty slice")
	}
	mm := MinMax{Min: values[0], Max: values[0]}
	for _, v := range values[1:] {
		mm.Min = math.Min(mm.Min, v)
		mm.Max = math.Max(mm.Max, v)
	}
	return mm
}

// Normalize maps v into [0,1] within the observed range; a degenerate
// range (max == min) maps everything to 0.
func (mm MinMax) Normalize(v float64) float64 {
	if mm.Max <= mm.Min {
		return 0
	}
	n := (v - mm.Min) / (mm.Max - mm.Min)
	if n < 0 {
		return 0
	}
	if n > 1 {
		return 1
	}
	return n
}

// String renders the range like the paper's §4.3.1 report
// ("[0.03, 41.39]").
func (mm MinMax) String() string {
	return fmt.Sprintf("[%.2f, %.2f]", mm.Min, mm.Max)
}

// Dimensions bundles the three raw measurements of one travel package.
type Dimensions struct {
	Representativity float64
	RawDistance      float64 // inner Eq. 3 sum; Cohesiveness = S − this
	Personalization  float64
}

// Measure computes all three raw dimensions for a package.
func Measure(cis []*ci.CI, g *profile.Profile) Dimensions {
	return Dimensions{
		Representativity: Representativity(cis),
		RawDistance:      RawDistanceSum(cis),
		Personalization:  Personalization(cis, g),
	}
}
