package dataset

import (
	"fmt"
	"strings"

	"grouptravel/internal/poi"
	"grouptravel/internal/rng"
)

// namer produces human-readable, unique POI names in the style of the
// paper's Table 1 ("Le Burgundy", "The Bicycle Store", "Un Zèbre à
// Montmartre", "Les Arts Décoratifs").
type namer struct {
	src  *rng.Source
	seen map[string]int
}

func newNamer(src *rng.Source) *namer {
	return &namer{src: src, seen: make(map[string]int)}
}

var (
	nameArticles = []string{"Le", "La", "Les", "Chez", "Un", "The", "Grand", "Petit", "Café", "Maison"}
	nameStems    = []string{
		"Burgundy", "Zèbre", "Montmartre", "Marais", "Bastille", "Opéra", "Louvre",
		"Jardin", "Colline", "Rivage", "Lumière", "Horizon", "Étoile", "Canal",
		"Belleville", "Rocher", "Verger", "Aurore", "Mirabeau", "Sablon",
	}
	catSuffix = map[poi.Category][]string{
		poi.Acco:  {"Hôtel", "Suites", "Residence", "Lodge", "Inn"},
		poi.Trans: {"Station", "Stop", "Terminal", "Dock", "Point"},
		poi.Rest:  {"Bistro", "Table", "Kitchen", "Brasserie", "Cantine"},
		poi.Attr:  {"Gallery", "Museum", "Garden", "Palace", "Theatre"},
	}
)

// name returns a unique display name for a POI of the given category/type.
func (n *namer) name(cat poi.Category, typ string) string {
	art := nameArticles[n.src.Intn(len(nameArticles))]
	stem := nameStems[n.src.Intn(len(nameStems))]
	suf := catSuffix[cat][n.src.Intn(len(catSuffix[cat]))]
	base := fmt.Sprintf("%s %s %s", art, stem, suf)
	n.seen[base]++
	if c := n.seen[base]; c > 1 {
		return fmt.Sprintf("%s %s", base, roman(c))
	}
	return base
}

// roman renders small positive integers as Roman numerals — hotels really
// are named like that ("Hôtel Lumière II").
func roman(v int) string {
	if v <= 0 {
		return ""
	}
	var b strings.Builder
	pairs := []struct {
		n int
		s string
	}{{1000, "M"}, {900, "CM"}, {500, "D"}, {400, "CD"}, {100, "C"}, {90, "XC"},
		{50, "L"}, {40, "XL"}, {10, "X"}, {9, "IX"}, {5, "V"}, {4, "IV"}, {1, "I"}}
	for _, p := range pairs {
		for v >= p.n {
			b.WriteString(p.s)
			v -= p.n
		}
	}
	return b.String()
}
