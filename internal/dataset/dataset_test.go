package dataset

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/tags"
)

func testCity(t *testing.T) *City {
	t.Helper()
	c, err := Generate(TestSpec("TestParis", 42))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return c
}

func TestGenerateCounts(t *testing.T) {
	spec := TestSpec("TestParis", 1)
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := c.POIs.CategoryCounts()
	want := [poi.NumCategories]int{spec.NumAcco, spec.NumTrans, spec.NumRest, spec.NumAttr}
	if counts != want {
		t.Fatalf("category counts = %v, want %v", counts, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TestSpec("X", 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TestSpec("X", 7))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.POIs.All(), b.POIs.All()
	if len(pa) != len(pb) {
		t.Fatal("sizes differ across identical runs")
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name || pa[i].Coord != pb[i].Coord || pa[i].Cost != pb[i].Cost {
			t.Fatalf("POI %d differs across identical runs", i)
		}
		for k := range pa[i].Vector {
			if pa[i].Vector[k] != pb[i].Vector[k] {
				t.Fatalf("POI %d vector differs across identical runs", i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(TestSpec("X", 1))
	b, _ := Generate(TestSpec("X", 2))
	same := 0
	for i, p := range a.POIs.All() {
		if p.Coord == b.POIs.All()[i].Coord {
			same++
		}
	}
	if same > a.POIs.Len()/10 {
		t.Fatalf("different seeds produced %d/%d identical coordinates", same, a.POIs.Len())
	}
}

func TestGeographyWithinExtent(t *testing.T) {
	spec := TestSpec("TestParis", 3)
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// POIs are Gaussian around neighborhood centers inside the extent disc;
	// virtually all should fall within ~2 extents of the center.
	limit := spec.ExtentKm * 2
	for _, p := range c.POIs.All() {
		if d := geo.Haversine(spec.Center, p.Coord); d > limit {
			t.Fatalf("POI %d at %v km from center (limit %v)", p.ID, d, limit)
		}
	}
}

func TestGeographyIsClustered(t *testing.T) {
	// Average nearest-neighbor distance in a clustered city must be well
	// below that of a uniform scatter over the same bounding box.
	c := testCity(t)
	all := c.POIs.All()
	nnd := func(points []geo.Point) float64 {
		tot := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for j, q := range points {
				if i == j {
					continue
				}
				if d := geo.Equirectangular(p, q); d < best {
					best = d
				}
			}
			tot += best
		}
		return tot / float64(len(points))
	}
	pts := make([]geo.Point, len(all))
	for i, p := range all {
		pts[i] = p.Coord
	}
	r := geo.BoundingRect(pts)
	// Uniform reference with the same n over the same rect (deterministic
	// lattice is fine for a coarse comparison).
	side := int(math.Ceil(math.Sqrt(float64(len(pts)))))
	var uniform []geo.Point
	for i := 0; i < side && len(uniform) < len(pts); i++ {
		for j := 0; j < side && len(uniform) < len(pts); j++ {
			uniform = append(uniform, geo.Point{
				Lat: r.Lat - r.Height*float64(i)/float64(side-1),
				Lon: r.Lon + r.Width*float64(j)/float64(side-1),
			})
		}
	}
	if nnd(pts) > nnd(uniform) {
		t.Fatalf("generated city is less clustered than a uniform lattice: %v vs %v", nnd(pts), nnd(uniform))
	}
}

func TestCostsFollowLogCheckinModel(t *testing.T) {
	spec := TestSpec("TestParis", 5)
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	maxCost := math.Log10(1 + float64(spec.MaxCheckin+1))
	costs := make([]float64, 0, c.POIs.Len())
	for _, p := range c.POIs.All() {
		if p.Cost < 0 || p.Cost > maxCost {
			t.Fatalf("cost %v outside [0, %v]", p.Cost, maxCost)
		}
		costs = append(costs, p.Cost)
	}
	// Zipf check-ins → the cost distribution must be right-skewed:
	// median well below max.
	sort.Float64s(costs)
	median := costs[len(costs)/2]
	if median > 0.7*costs[len(costs)-1] {
		t.Fatalf("cost distribution not skewed: median %v vs max %v", median, costs[len(costs)-1])
	}
}

func TestItemVectorsMatchSchema(t *testing.T) {
	c := testCity(t)
	for _, p := range c.POIs.All() {
		if err := c.Schema.Validate(p); err != nil {
			t.Fatalf("generated POI invalid: %v", err)
		}
		switch p.Cat {
		case poi.Acco, poi.Trans:
			// One-hot with the 1 at the POI's type index.
			if p.Vector.Sum() != 1 {
				t.Fatalf("POI %d: acco/trans vector not one-hot: %v", p.ID, p.Vector)
			}
			if idx := c.Schema.TypeIndex(p.Cat, p.Type); p.Vector[idx] != 1 {
				t.Fatalf("POI %d: one-hot not at type index", p.ID)
			}
		case poi.Rest, poi.Attr:
			if math.Abs(p.Vector.Sum()-1) > 1e-9 {
				t.Fatalf("POI %d: topic vector sums to %v", p.ID, p.Vector.Sum())
			}
		}
	}
}

func TestTopicVectorsAlignWithThemes(t *testing.T) {
	// Two restaurants planted from the same theme should, on average, have
	// more similar topic vectors than two from different themes.
	c := testCity(t)
	rests := c.POIs.ByCategory(poi.Rest)
	cos := func(a, b *poi.POI) float64 {
		num, na, nb := 0.0, 0.0, 0.0
		for k := range a.Vector {
			num += a.Vector[k] * b.Vector[k]
			na += a.Vector[k] * a.Vector[k]
			nb += b.Vector[k] * b.Vector[k]
		}
		return num / math.Sqrt(na*nb)
	}
	sameSum, sameN, diffSum, diffN := 0.0, 0, 0.0, 0
	for i := 0; i < len(rests); i++ {
		for j := i + 1; j < len(rests); j++ {
			s := cos(rests[i], rests[j])
			if rests[i].Type == rests[j].Type {
				sameSum += s
				sameN++
			} else {
				diffSum += s
				diffN++
			}
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Skip("test city too small for both pair kinds")
	}
	same, diff := sameSum/float64(sameN), diffSum/float64(diffN)
	if same <= diff {
		t.Fatalf("same-theme similarity %v not above cross-theme %v", same, diff)
	}
}

func TestNamesUnique(t *testing.T) {
	c := testCity(t)
	seen := map[string]bool{}
	for _, p := range c.POIs.All() {
		if seen[p.Name] {
			t.Fatalf("duplicate POI name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestTagsDrawnFromThemes(t *testing.T) {
	c := testCity(t)
	restWords := map[string]bool{}
	for _, w := range tags.ThemeWords(tags.RestaurantThemes) {
		restWords[w] = true
	}
	for _, p := range c.POIs.ByCategory(poi.Rest) {
		for _, tok := range tags.Tokenize(p.Tags) {
			if !restWords[tok] {
				t.Fatalf("restaurant %d tag %q not from any theme", p.ID, tok)
			}
		}
	}
}

func TestBuiltinCity(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale city generation in -short mode")
	}
	c, err := BuiltinCity("Paris")
	if err != nil {
		t.Fatal(err)
	}
	if c.POIs.Len() != 1000 {
		t.Fatalf("builtin Paris has %d POIs, want 1000", c.POIs.Len())
	}
	center := BuiltinCenters["Paris"]
	r := c.POIs.Bounds()
	if !r.Contains(center) {
		t.Fatalf("Paris center %v outside POI bounds %v", center, r)
	}
	if _, err := BuiltinCity("Atlantis"); err == nil {
		t.Fatal("unknown builtin city accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		func() Spec { s := TestSpec("x", 1); s.Name = ""; return s }(),
		func() Spec { s := TestSpec("x", 1); s.NumRest = 0; return s }(),
		func() Spec { s := TestSpec("x", 1); s.Topics = 1; return s }(),
		func() Spec { s := TestSpec("x", 1); s.ExtentKm = -1; return s }(),
		func() Spec { s := TestSpec("x", 1); s.Center = geo.Point{Lat: 99}; return s }(),
		func() Spec { s := TestSpec("x", 1); s.MaxCheckin = 1; return s }(),
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := testCity(t)
	var buf bytes.Buffer
	if err := c.SaveJSON(&buf); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	c2, err := LoadJSON(&buf)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if c2.Name != c.Name || c2.POIs.Len() != c.POIs.Len() {
		t.Fatal("round trip lost identity")
	}
	for i, p := range c.POIs.All() {
		q := c2.POIs.All()[i]
		if p.ID != q.ID || p.Name != q.Name || p.Cat != q.Cat || p.Coord != q.Coord ||
			p.Type != q.Type || p.Tags != q.Tags || p.Cost != q.Cost {
			t.Fatalf("POI %d changed in round trip", i)
		}
		for k := range p.Vector {
			if p.Vector[k] != q.Vector[k] {
				t.Fatalf("POI %d vector changed in round trip", i)
			}
		}
	}
	// Schema labels preserved.
	for _, cat := range poi.Categories {
		a, b := c.Schema.Labels(cat), c2.Schema.Labels(cat)
		if len(a) != len(b) {
			t.Fatalf("schema labels lost for %v", cat)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("schema label changed for %v[%d]", cat, i)
			}
		}
	}
}

func TestLoadJSONRejectsGarbage(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage JSON accepted")
	}
	// Unknown category inside an otherwise valid document.
	bad := `{"name":"x","schema":{"acco":["hotel"],"trans":["tram"],"rest":["t0"],"attr":["t0"]},
	         "pois":[{"id":1,"name":"p","category":"volcano","lat":0,"lon":0,"vector":[1]}]}`
	if _, err := LoadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func TestSaveCSV(t *testing.T) {
	c := testCity(t)
	var buf bytes.Buffer
	if err := c.SaveCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != c.POIs.Len()+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), c.POIs.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "id,name,cat") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestRoman(t *testing.T) {
	cases := map[int]string{1: "I", 2: "II", 4: "IV", 9: "IX", 14: "XIV", 40: "XL", 90: "XC", 2024: "MMXXIV"}
	for n, want := range cases {
		if got := roman(n); got != want {
			t.Errorf("roman(%d) = %q, want %q", n, got, want)
		}
	}
	if roman(0) != "" || roman(-3) != "" {
		t.Error("roman of non-positive not empty")
	}
}
