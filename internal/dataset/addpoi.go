package dataset

import (
	"fmt"

	"grouptravel/internal/geo"
	"grouptravel/internal/lda"
	"grouptravel/internal/poi"
	"grouptravel/internal/tags"
)

// NewPOI describes a POI to add to an existing city — e.g. a venue that
// opened after the dataset snapshot, or a user-contributed entry. The
// paper's pipeline handles this case implicitly (re-run the Foursquare
// augmentation); here the retained LDA models embed the new POI's tags
// into the city's existing topic space without retraining.
type NewPOI struct {
	Name  string
	Cat   poi.Category
	Coord geo.Point
	Type  string  // required for acco/trans (a schema type label)
	Tags  string  // free-text tags; required for rest/attr
	Cost  float64 // log-checkin cost; must be non-negative
}

// AddPOI embeds and validates a new POI and returns a rebuilt City that
// includes it. The original City is unchanged (collections are immutable);
// rebuilding the index over n POIs is O(n) and keeps every invariant
// checked in one place.
//
// Restaurant/attraction vectors are inferred with a short Gibbs chain
// against the frozen topic-word counts (lda.Model.Infer) and then mapped
// through the same topic alignment as the training items, so the new item
// is directly comparable with profiles refined anywhere.
func (c *City) AddPOI(n NewPOI) (*City, error) {
	if c.POIs == nil || c.Schema == nil {
		return nil, fmt.Errorf("dataset: AddPOI on an unindexed city")
	}
	p := &poi.POI{
		Name:  n.Name,
		Cat:   n.Cat,
		Coord: n.Coord,
		Type:  n.Type,
		Tags:  n.Tags,
		Cost:  n.Cost,
	}
	// Allocate the next free id.
	maxID := -1
	for _, q := range c.POIs.All() {
		if q.ID > maxID {
			maxID = q.ID
		}
	}
	p.ID = maxID + 1

	switch n.Cat {
	case poi.Acco, poi.Trans:
		if c.Schema.TypeIndex(n.Cat, n.Type) < 0 {
			return nil, fmt.Errorf("dataset: unknown %s type %q", n.Cat, n.Type)
		}
		p.Vector = c.Schema.OneHot(n.Cat, n.Type)
	case poi.Rest, poi.Attr:
		model := c.RestLDA
		themes := tags.RestaurantThemes
		if n.Cat == poi.Attr {
			model = c.AttrLDA
			themes = tags.AttractionThemes
		}
		if model == nil {
			return nil, fmt.Errorf("dataset: city %q has no %s topic model (loaded from JSON?); regenerate the city to add tagged POIs", c.Name, n.Cat)
		}
		vec, typ, err := embedNewTags(model, themes, n.Tags, int64(p.ID))
		if err != nil {
			return nil, err
		}
		p.Vector = vec
		if p.Type == "" {
			p.Type = typ
		}
	default:
		return nil, fmt.Errorf("dataset: invalid category %d", n.Cat)
	}

	if err := c.Schema.Validate(p); err != nil {
		return nil, err
	}
	all := append(append([]*poi.POI(nil), c.POIs.All()...), p)
	coll, err := poi.NewCollection(c.Schema, all)
	if err != nil {
		return nil, err
	}
	return &City{
		Name: c.Name, POIs: coll, Schema: c.Schema,
		RestLDA: c.RestLDA, AttrLDA: c.AttrLDA,
	}, nil
}

// embedNewTags infers the aligned topic distribution for a new tag string
// and derives a display type from the dominant theme.
func embedNewTags(model *lda.Model, themes []tags.Theme, text string, seed int64) ([]float64, string, error) {
	toks := tags.Tokenize(text)
	var doc tags.Document
	for _, tok := range toks {
		if id, ok := model.VocabLookup(tok); ok {
			doc = append(doc, id)
		}
	}
	if len(doc) == 0 {
		return nil, "", fmt.Errorf("dataset: no known tag words in %q", text)
	}
	theta := model.Infer(doc, 60, seed)
	perm := topicThemeAlignment(model, themes)
	aligned := permute(theta, perm)
	// Dominant aligned topic indexes the theme list when K ≥ themes were
	// assigned in theme order; fall back to token matching otherwise.
	best := 0
	for k, v := range aligned {
		if v > aligned[best] {
			best = k
		}
	}
	typ := ""
	if best < len(themes) {
		typ = themes[best].Name
	} else if ti, _ := tags.ThemeIndex(themes, toks); ti >= 0 {
		typ = themes[ti].Name
	}
	return aligned, typ, nil
}
