package dataset

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/vec"
)

// cityJSON is the on-disk format: a TourPedia-style record per POI plus the
// schema so that item vectors stay interpretable across save/load.
type cityJSON struct {
	Name   string     `json:"name"`
	Schema schemaJSON `json:"schema"`
	POIs   []poiJSON  `json:"pois"`
}

type schemaJSON struct {
	Acco  []string `json:"acco"`
	Trans []string `json:"trans"`
	Rest  []string `json:"rest"`
	Attr  []string `json:"attr"`
}

type poiJSON struct {
	ID     int       `json:"id"`
	Name   string    `json:"name"`
	Cat    string    `json:"category"`
	Lat    float64   `json:"lat"`
	Lon    float64   `json:"lon"`
	Type   string    `json:"type"`
	Tags   string    `json:"tags"`
	Cost   float64   `json:"cost"`
	Vector []float64 `json:"vector"`
}

// SaveJSON writes the city in the TourPedia-style JSON format.
// LDA models are not serialized; a loaded city can score existing POIs but
// needs regeneration to embed brand-new tag documents.
func (c *City) SaveJSON(w io.Writer) error {
	out := cityJSON{
		Name: c.Name,
		Schema: schemaJSON{
			Acco:  c.Schema.Labels(poi.Acco),
			Trans: c.Schema.Labels(poi.Trans),
			Rest:  c.Schema.Labels(poi.Rest),
			Attr:  c.Schema.Labels(poi.Attr),
		},
	}
	for _, p := range c.POIs.All() {
		out.POIs = append(out.POIs, poiJSON{
			ID: p.ID, Name: p.Name, Cat: p.Cat.String(),
			Lat: p.Coord.Lat, Lon: p.Coord.Lon,
			Type: p.Type, Tags: p.Tags, Cost: p.Cost, Vector: p.Vector,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadJSON reads a city saved with SaveJSON (or a converted real TourPedia
// dump). All POIs are re-validated against the embedded schema.
func LoadJSON(r io.Reader) (*City, error) {
	var in cityJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decode city: %w", err)
	}
	schema := poi.NewSchema(in.Schema.Acco, in.Schema.Trans, in.Schema.Rest, in.Schema.Attr)
	pois := make([]*poi.POI, 0, len(in.POIs))
	for _, pj := range in.POIs {
		cat, err := poi.ParseCategory(pj.Cat)
		if err != nil {
			return nil, fmt.Errorf("dataset: poi %d: %w", pj.ID, err)
		}
		pois = append(pois, &poi.POI{
			ID: pj.ID, Name: pj.Name, Cat: cat,
			Coord: geo.Point{Lat: pj.Lat, Lon: pj.Lon},
			Type:  pj.Type, Tags: pj.Tags, Cost: pj.Cost,
			Vector: vec.Vector(pj.Vector),
		})
	}
	coll, err := poi.NewCollection(schema, pois)
	if err != nil {
		return nil, err
	}
	return &City{Name: in.Name, POIs: coll, Schema: schema}, nil
}

// csvHeader is the column layout of the CSV export (Table 1 columns).
var csvHeader = []string{"id", "name", "cat", "lat", "lon", "type", "tags", "cost"}

// SaveCSV writes the POIs as a flat CSV resembling the paper's Table 1.
// Item vectors are omitted (CSV is for inspection, JSON for round-trips).
func (c *City) SaveCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, p := range c.POIs.All() {
		rec := []string{
			strconv.Itoa(p.ID), p.Name, p.Cat.String(),
			strconv.FormatFloat(p.Coord.Lat, 'f', 5, 64),
			strconv.FormatFloat(p.Coord.Lon, 'f', 5, 64),
			p.Type, p.Tags,
			strconv.FormatFloat(p.Cost, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
