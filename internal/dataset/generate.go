package dataset

import (
	"fmt"
	"math"
	"strings"

	"grouptravel/internal/geo"
	"grouptravel/internal/lda"
	"grouptravel/internal/poi"
	"grouptravel/internal/rng"
	"grouptravel/internal/tags"
)

// kmPerDegLat is the latitude degree length; longitude is corrected by
// cos(latitude) during generation.
const kmPerDegLat = 110.574

// Generate builds a complete synthetic City from a Spec. The pipeline is:
//
//  1. place Gaussian neighborhood clusters inside the city extent;
//  2. scatter POIs of each category across neighborhoods;
//  3. assign acco/trans types from the registries, and draw rest/attr tags
//     from planted latent themes;
//  4. draw Zipf check-in counts and set cost = log10(1+#checkins) (§2.1);
//  5. train LDA per category on the generated tags and set the item
//     vectors: one-hot types for acco/trans, LDA θ for rest/attr (§3.2).
func Generate(spec Spec) (*City, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	src := rng.New(spec.Seed)

	hoods := placeNeighborhoods(spec, src.Split("hoods"))
	total := spec.NumAcco + spec.NumTrans + spec.NumRest + spec.NumAttr
	pois := make([]*poi.POI, 0, total)

	counts := map[poi.Category]int{
		poi.Acco:  spec.NumAcco,
		poi.Trans: spec.NumTrans,
		poi.Rest:  spec.NumRest,
		poi.Attr:  spec.NumAttr,
	}
	id := 0
	namer := newNamer(src.Split("names"))
	catSrc := src.Split("placement")
	tagSrc := src.Split("tags")
	for _, cat := range poi.Categories {
		for n := 0; n < counts[cat]; n++ {
			p := &poi.POI{ID: id, Cat: cat}
			hood := hoods.sampleHood(catSrc)
			p.Coord = hoods.sample(cat, hood, catSrc)
			switch cat {
			case poi.Acco:
				p.Type = tags.AccommodationTypes[catSrc.WeightedIndex(accoTypeWeights)]
				p.Tags = accoTags(p.Type, tagSrc)
			case poi.Trans:
				p.Type = tags.TransportationTypes[catSrc.WeightedIndex(transTypeWeights)]
				p.Tags = transTags(p.Type, tagSrc)
			case poi.Rest:
				theme := hoods.themeFor(cat, hood, tagSrc)
				p.Type = tags.RestaurantThemes[theme].Name
				p.Tags = themedTags(tags.RestaurantThemes, theme, tagSrc)
			case poi.Attr:
				theme := hoods.themeFor(cat, hood, tagSrc)
				p.Type = tags.AttractionThemes[theme].Name
				p.Tags = themedTags(tags.AttractionThemes, theme, tagSrc)
			}
			p.Name = namer.name(cat, p.Type)
			pois = append(pois, p)
			id++
		}
	}

	assignCosts(pois, spec, src.Split("checkins"))

	restModel, attrModel, err := embedItems(pois, spec.Topics, spec.LDAIters, spec.Seed)
	if err != nil {
		return nil, err
	}
	// Align topic order to the planted themes so that topic j means the
	// same thing in every generated city: profiles refined in one city
	// transfer to another (the §4.4.4 Paris→Barcelona study depends on
	// this; with real TourPedia data the paper trains one LDA over all
	// cities, which aligns topics implicitly).
	restPerm := topicThemeAlignment(restModel, tags.RestaurantThemes)
	attrPerm := topicThemeAlignment(attrModel, tags.AttractionThemes)
	for _, p := range pois {
		switch p.Cat {
		case poi.Rest:
			p.Vector = permute(p.Vector, restPerm)
		case poi.Attr:
			p.Vector = permute(p.Vector, attrPerm)
		}
	}
	restLabels, attrLabels := schemaLabels(restModel, attrModel)
	restLabels = permuteStrings(restLabels, restPerm)
	attrLabels = permuteStrings(attrLabels, attrPerm)
	schema := poi.NewSchema(tags.AccommodationTypes, tags.TransportationTypes, restLabels, attrLabels)

	// acco/trans one-hot vectors need the schema, so fill them now.
	for _, p := range pois {
		if p.Cat == poi.Acco || p.Cat == poi.Trans {
			p.Vector = schema.OneHot(p.Cat, p.Type)
		}
	}

	coll, err := poi.NewCollection(schema, pois)
	if err != nil {
		return nil, fmt.Errorf("dataset: generated invalid collection: %w", err)
	}
	return &City{Name: spec.Name, POIs: coll, Schema: schema, RestLDA: restModel, AttrLDA: attrModel}, nil
}

// neighborhoods holds cluster centers, per-category placement noise, and
// per-neighborhood theme biases: real cities concentrate museums in a
// museum quarter and nightlife in a nightlife district, so each
// neighborhood draws restaurant/attraction themes from its own skewed
// distribution. This theme–geography correlation is what makes
// personalization geographically *expensive* (matching a narrow taste
// means traveling to particular districts), reproducing the paper's
// personalization-vs-cohesiveness tension at city scale.
type neighborhoods struct {
	centers []geo.Point
	sigmaKm float64
	center  geo.Point
	latCos  float64

	restThemeWeights [][]float64 // [hood][theme]
	attrThemeWeights [][]float64
}

func placeNeighborhoods(spec Spec, src *rng.Source) *neighborhoods {
	h := &neighborhoods{
		sigmaKm: spec.ExtentKm / (2.5 * math.Sqrt(float64(spec.Neighborhoods))),
		center:  spec.Center,
		latCos:  math.Cos(spec.Center.Lat * math.Pi / 180),
	}
	radius := spec.ExtentKm / 2
	for i := 0; i < spec.Neighborhoods; i++ {
		// Uniform in a disc around the center (rejection-free polar draw).
		r := radius * math.Sqrt(src.Float64())
		theta := src.Range(0, 2*math.Pi)
		h.centers = append(h.centers, h.offset(spec.Center, r*math.Cos(theta), r*math.Sin(theta)))
		// Skewed per-hood theme mixes (Dirichlet 0.15: one or two themes
		// dominate each district).
		h.restThemeWeights = append(h.restThemeWeights, src.Dirichlet(0.15, len(tags.RestaurantThemes)))
		h.attrThemeWeights = append(h.attrThemeWeights, src.Dirichlet(0.15, len(tags.AttractionThemes)))
	}
	return h
}

// sampleHood picks a neighborhood index.
func (h *neighborhoods) sampleHood(src *rng.Source) int {
	return src.Intn(len(h.centers))
}

// themeFor draws a theme for a rest/attr POI in the given neighborhood.
func (h *neighborhoods) themeFor(cat poi.Category, hood int, src *rng.Source) int {
	switch cat {
	case poi.Rest:
		return src.WeightedIndex(h.restThemeWeights[hood])
	case poi.Attr:
		return src.WeightedIndex(h.attrThemeWeights[hood])
	default:
		panic("dataset: themeFor on untagged category")
	}
}

// offset shifts a point by east/north kilometers.
func (h *neighborhoods) offset(p geo.Point, eastKm, northKm float64) geo.Point {
	return geo.Point{
		Lat: p.Lat + northKm/kmPerDegLat,
		Lon: p.Lon + eastKm/(kmPerDegLat*h.latCos),
	}
}

// sample draws a POI location inside the given neighborhood: its center
// plus Gaussian scatter. Transportation is slightly more dispersed
// (stations line corridors rather than cluster in squares).
func (h *neighborhoods) sample(cat poi.Category, hood int, src *rng.Source) geo.Point {
	c := h.centers[hood]
	sigma := h.sigmaKm
	if cat == poi.Trans {
		sigma *= 1.6
	}
	return h.offset(c, sigma*src.NormFloat64(), sigma*src.NormFloat64())
}

// Type frequency weights: common types dominate (hotels over campsites,
// metro stations over ferry docks), mirroring real city inventories.
var (
	accoTypeWeights  = []float64{10, 4, 2, 1, 5, 3, 1, 0.5}
	transTypeWeights = []float64{4, 2, 8, 5, 2, 4, 3, 0.5}
)

// themedTags draws 6–14 tag words, ~85% from the POI's own theme and the
// rest from random other themes — enough signal for LDA to recover the
// themes, with realistic cross-theme noise.
func themedTags(themes []tags.Theme, theme int, src *rng.Source) string {
	n := 6 + src.Intn(9)
	words := make([]string, 0, n)
	for i := 0; i < n; i++ {
		pool := themes[theme].Words
		if src.Bool(0.15) {
			pool = themes[src.Intn(len(themes))].Words
		}
		words = append(words, pool[src.Intn(len(pool))])
	}
	return strings.Join(words, " ")
}

var accoTagPool = []string{"luxury", "suites", "bar", "spa", "breakfast", "wifi", "budget", "central", "quiet", "terrace", "view", "family", "boutique", "historic"}

func accoTags(typ string, src *rng.Source) string {
	n := 3 + src.Intn(4)
	words := []string{typ}
	for i := 0; i < n; i++ {
		words = append(words, accoTagPool[src.Intn(len(accoTagPool))])
	}
	return strings.Join(words, " ")
}

var transTagPool = []string{"transport", "station", "line", "connection", "rental", "accessible", "night", "express", "terminal", "hub"}

func transTags(typ string, src *rng.Source) string {
	n := 2 + src.Intn(4)
	words := []string{typ}
	for i := 0; i < n; i++ {
		words = append(words, transTagPool[src.Intn(len(transTagPool))])
	}
	return strings.Join(words, " ")
}

// assignCosts draws Zipf check-in counts over the city's POIs and sets
// cost = log10(1 + #checkins) — the paper's §2.1 estimator ("the more
// people check in POI i, the more crowded ... hence the more expensive").
func assignCosts(pois []*poi.POI, spec Spec, src *rng.Source) {
	z := src.Zipf(1.4, uint64(spec.MaxCheckin))
	for _, p := range pois {
		checkins := z() + 1
		p.Cost = math.Log10(1 + float64(checkins))
	}
}

// topicThemeAlignment computes a canonical topic order: perm[newIdx] is
// the model's topic whose word distribution puts the most mass on theme
// newIdx's vocabulary. Themes claim topics greedily in theme order;
// leftover topics (when K > number of themes) keep their relative order at
// the end.
func topicThemeAlignment(m *lda.Model, themes []tags.Theme) []int {
	k := m.Topics()
	// affinity[t][topic] = phi mass of the topic on theme t's words.
	taken := make([]bool, k)
	var perm []int
	for _, th := range themes {
		if len(perm) == k {
			break
		}
		bestTopic, bestMass := -1, -1.0
		for topic := 0; topic < k; topic++ {
			if taken[topic] {
				continue
			}
			mass := 0.0
			phi := m.Phi(topic)
			for _, w := range th.Words {
				if id, ok := vocabLookup(m, w); ok {
					mass += phi[id]
				}
			}
			if mass > bestMass {
				bestTopic, bestMass = topic, mass
			}
		}
		perm = append(perm, bestTopic)
		taken[bestTopic] = true
	}
	for topic := 0; topic < k; topic++ {
		if !taken[topic] {
			perm = append(perm, topic)
		}
	}
	return perm
}

// vocabLookup resolves a word in the model's training vocabulary.
func vocabLookup(m *lda.Model, w string) (int, bool) {
	return m.VocabLookup(w)
}

// permute returns v reordered so out[j] = v[perm[j]].
func permute(v []float64, perm []int) []float64 {
	out := make([]float64, len(v))
	for j, src := range perm {
		out[j] = v[src]
	}
	return out
}

// permuteStrings is permute for label slices.
func permuteStrings(v []string, perm []int) []string {
	out := make([]string, len(v))
	for j, src := range perm {
		out[j] = v[src]
	}
	return out
}

// embedItems trains one LDA model per tagged category and stores the topic
// distribution θ as each restaurant/attraction item vector.
func embedItems(pois []*poi.POI, topics, iters int, seed int64) (restModel, attrModel *lda.Model, err error) {
	build := func(cat poi.Category, seed int64) (*lda.Model, error) {
		corpus := tags.NewCorpus()
		var members []*poi.POI
		for _, p := range pois {
			if p.Cat != cat {
				continue
			}
			corpus.AddText(p.Tags)
			members = append(members, p)
		}
		cfg := lda.DefaultConfig(topics)
		cfg.Iterations = iters
		cfg.Seed = seed
		m, err := lda.Train(corpus, cfg)
		if err != nil {
			return nil, fmt.Errorf("dataset: LDA for %s: %w", cat, err)
		}
		for d, p := range members {
			p.Vector = m.Theta(d)
		}
		return m, nil
	}
	if restModel, err = build(poi.Rest, seed^0x5eed); err != nil {
		return nil, nil, err
	}
	if attrModel, err = build(poi.Attr, seed^0xa77a); err != nil {
		return nil, nil, err
	}
	return restModel, attrModel, nil
}

// EmbedOptions controls FromPOIs embedding.
type EmbedOptions struct {
	Topics   int
	LDAIters int
	Seed     int64
}

// FromPOIs builds a City from externally-sourced POIs (e.g. a converted
// real TourPedia dump): it trains LDA on the restaurant/attraction tags,
// aligns topics with the canonical themes, assigns one-hot type vectors to
// accommodations/transportation, and indexes everything under the
// resulting schema. Restaurants and attractions must carry tags; acco and
// trans must carry a known type label.
func FromPOIs(name string, pois []*poi.POI, opts EmbedOptions) (*City, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset: city name required")
	}
	if len(pois) == 0 {
		return nil, fmt.Errorf("dataset: no POIs")
	}
	if opts.Topics < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 topics, got %d", opts.Topics)
	}
	if opts.LDAIters < 1 {
		return nil, fmt.Errorf("dataset: need at least 1 LDA iteration")
	}
	restModel, attrModel, err := embedItems(pois, opts.Topics, opts.LDAIters, opts.Seed)
	if err != nil {
		return nil, err
	}
	restPerm := topicThemeAlignment(restModel, tags.RestaurantThemes)
	attrPerm := topicThemeAlignment(attrModel, tags.AttractionThemes)
	for _, p := range pois {
		switch p.Cat {
		case poi.Rest:
			p.Vector = permute(p.Vector, restPerm)
		case poi.Attr:
			p.Vector = permute(p.Vector, attrPerm)
		}
	}
	restLabels, attrLabels := schemaLabels(restModel, attrModel)
	restLabels = permuteStrings(restLabels, restPerm)
	attrLabels = permuteStrings(attrLabels, attrPerm)
	schema := poi.NewSchema(tags.AccommodationTypes, tags.TransportationTypes, restLabels, attrLabels)
	for _, p := range pois {
		if p.Cat == poi.Acco || p.Cat == poi.Trans {
			p.Vector = schema.OneHot(p.Cat, p.Type)
			if p.Vector.Sum() == 0 {
				return nil, fmt.Errorf("dataset: POI %d (%s) has unknown %s type %q", p.ID, p.Name, p.Cat, p.Type)
			}
		}
	}
	coll, err := poi.NewCollection(schema, pois)
	if err != nil {
		return nil, err
	}
	return &City{Name: name, POIs: coll, Schema: schema, RestLDA: restModel, AttrLDA: attrModel}, nil
}
