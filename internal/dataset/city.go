// Package dataset builds the POI datasets GroupTravel runs on.
//
// The paper uses the TourPedia dump (POIs of eight cities) augmented with
// Foursquare types, tags and check-in counts; neither source is available
// offline, so this package synthesizes datasets with the same schema and —
// more importantly — the same statistical structure the algorithms depend
// on:
//
//   - geography is clustered into neighborhoods (cities are not uniform
//     point clouds), so cohesiveness and representativity behave like they
//     do on real cities;
//   - restaurant/attraction tags are drawn from latent themes (the paper's
//     "Japanese, sushi" / "art gallery, museum, library" examples), and the
//     item vectors are produced by actually running LDA on those tags —
//     the full §2.2 pipeline, not a shortcut;
//   - check-in counts are Zipf-distributed (a few famous POIs absorb most
//     visits) and cost = log(#checkins), the paper's §2.1 cost model.
//
// A TourPedia-style JSON loader/saver is included so a real dump can be
// substituted without touching any other package.
package dataset

import (
	"fmt"

	"grouptravel/internal/geo"
	"grouptravel/internal/lda"
	"grouptravel/internal/poi"
	"grouptravel/internal/tags"
)

// City is a fully built dataset: indexed POIs plus the vector schema shared
// by item vectors and profiles, and the trained LDA models (kept so that
// POIs added later can be embedded consistently).
type City struct {
	Name   string
	POIs   *poi.Collection
	Schema *poi.Schema

	RestLDA *lda.Model
	AttrLDA *lda.Model
}

// Spec describes a synthetic city to generate.
type Spec struct {
	Name          string
	Center        geo.Point
	ExtentKm      float64 // approximate city diameter
	Neighborhoods int     // number of POI clusters

	NumAcco  int
	NumTrans int
	NumRest  int
	NumAttr  int

	Topics     int   // LDA topics for rest and attr vectors
	LDAIters   int   // Gibbs sweeps when embedding tags
	Seed       int64 // generation is deterministic per (Spec, Seed)
	MaxCheckin int   // upper bound for Zipf check-in counts
}

// DefaultSpec returns a paper-scale city: roughly a thousand POIs with the
// category mix of a TourPedia city (attractions dominate, then restaurants).
func DefaultSpec(name string, center geo.Point, seed int64) Spec {
	return Spec{
		Name:          name,
		Center:        center,
		ExtentKm:      12,
		Neighborhoods: 9,
		NumAcco:       150,
		NumTrans:      100,
		NumRest:       300,
		NumAttr:       450,
		Topics:        6,
		LDAIters:      120,
		Seed:          seed,
		MaxCheckin:    20000,
	}
}

// TestSpec returns a small, fast city for unit tests.
func TestSpec(name string, seed int64) Spec {
	return Spec{
		Name:          name,
		Center:        geo.Point{Lat: 48.8566, Lon: 2.3522},
		ExtentKm:      8,
		Neighborhoods: 4,
		NumAcco:       24,
		NumTrans:      16,
		NumRest:       40,
		NumAttr:       60,
		Topics:        6,
		LDAIters:      40,
		Seed:          seed,
		MaxCheckin:    5000,
	}
}

func (s Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("dataset: city name required")
	}
	if !s.Center.Valid() {
		return fmt.Errorf("dataset: invalid center %v", s.Center)
	}
	if s.ExtentKm <= 0 || s.Neighborhoods < 1 {
		return fmt.Errorf("dataset: extent and neighborhoods must be positive")
	}
	if s.NumAcco < 1 || s.NumTrans < 1 || s.NumRest < 1 || s.NumAttr < 1 {
		return fmt.Errorf("dataset: every category needs at least one POI")
	}
	if s.Topics < 2 {
		return fmt.Errorf("dataset: need at least 2 topics, got %d", s.Topics)
	}
	if s.LDAIters < 1 {
		return fmt.Errorf("dataset: need at least 1 LDA iteration")
	}
	if s.MaxCheckin < 2 {
		return fmt.Errorf("dataset: MaxCheckin must be at least 2")
	}
	return nil
}

// BuiltinCenters are the eight TourPedia cities with their true centers;
// Generate with one of these reproduces the paper's eight-city setting.
var BuiltinCenters = map[string]geo.Point{
	"Amsterdam": {Lat: 52.3676, Lon: 4.9041},
	"Barcelona": {Lat: 41.3874, Lon: 2.1686},
	"Berlin":    {Lat: 52.5200, Lon: 13.4050},
	"Dubai":     {Lat: 25.2048, Lon: 55.2708},
	"London":    {Lat: 51.5072, Lon: -0.1276},
	"Paris":     {Lat: 48.8566, Lon: 2.3522},
	"Rome":      {Lat: 41.9028, Lon: 12.4964},
	"Tuscany":   {Lat: 43.7711, Lon: 11.2486},
}

// BuiltinCity generates one of the eight TourPedia cities at paper scale.
// The seed is derived from the name so distinct cities differ but each is
// reproducible.
func BuiltinCity(name string) (*City, error) {
	center, ok := BuiltinCenters[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown builtin city %q (have the eight TourPedia cities)", name)
	}
	seed := int64(0)
	for _, r := range name {
		seed = seed*131 + int64(r)
	}
	return Generate(DefaultSpec(name, center, seed))
}

// SchemaLabels builds the vector-schema labels: acco/trans use the fixed
// type registries (§2.2: "the types are well-defined"), rest/attr use the
// LDA topics, each labeled by its representative top words (the paper shows
// topics to users through representative tags).
func schemaLabels(restModel, attrModel *lda.Model) (rest, attr []string) {
	label := func(m *lda.Model, k int) string {
		top := m.TopWords(k, 3)
		return fmt.Sprintf("topic%d(%s)", k, joinWords(top))
	}
	for k := 0; k < restModel.Topics(); k++ {
		rest = append(rest, label(restModel, k))
	}
	for k := 0; k < attrModel.Topics(); k++ {
		attr = append(attr, label(attrModel, k))
	}
	return rest, attr
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

var _ = tags.RestaurantThemes // documented dependency: themes drive tag generation (generate.go)
