package dataset

import (
	"bytes"
	"testing"

	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
)

func addCity(t *testing.T) *City {
	t.Helper()
	c, err := Generate(TestSpec("AddCity", 61))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddPOIAccommodation(t *testing.T) {
	c := addCity(t)
	before := c.POIs.Len()
	c2, err := c.AddPOI(NewPOI{
		Name: "Le Nouveau Palace", Cat: poi.Acco,
		Coord: geo.Point{Lat: 48.8566, Lon: 2.3522},
		Type:  "hotel", Cost: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c2.POIs.Len() != before+1 {
		t.Fatalf("len = %d, want %d", c2.POIs.Len(), before+1)
	}
	// Original untouched.
	if c.POIs.Len() != before {
		t.Fatal("AddPOI mutated the original city")
	}
	// The new POI has a fresh id and a one-hot vector at "hotel".
	var added *poi.POI
	for _, p := range c2.POIs.All() {
		if p.Name == "Le Nouveau Palace" {
			added = p
		}
	}
	if added == nil {
		t.Fatal("added POI not found")
	}
	if c.POIs.ByID(added.ID) != nil {
		t.Fatal("added POI reused an existing id")
	}
	if added.Vector[c2.Schema.TypeIndex(poi.Acco, "hotel")] != 1 {
		t.Fatalf("one-hot wrong: %v", added.Vector)
	}
}

func TestAddPOIRestaurantInferred(t *testing.T) {
	c := addCity(t)
	c2, err := c.AddPOI(NewPOI{
		Name: "Sushi Nouveau", Cat: poi.Rest,
		Coord: geo.Point{Lat: 48.8566, Lon: 2.3522},
		Tags:  "sushi ramen sake japanese tempura sushi", Cost: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var added *poi.POI
	for _, p := range c2.POIs.All() {
		if p.Name == "Sushi Nouveau" {
			added = p
		}
	}
	if added == nil {
		t.Fatal("added POI not found")
	}
	// The inferred vector must be a distribution strongly resembling
	// existing japanese-theme restaurants.
	sum := 0.0
	for _, v := range added.Vector {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("inferred vector sums to %v", sum)
	}
	best := 0.0
	for _, p := range c2.POIs.ByCategory(poi.Rest) {
		if p.Type != "japanese" || p.ID == added.ID {
			continue
		}
		cos := cosine(p.Vector, added.Vector)
		if cos > best {
			best = cos
		}
	}
	if best < 0.8 {
		t.Fatalf("inferred japanese restaurant does not resemble existing ones (best cos %v)", best)
	}
	if added.Type == "" {
		t.Fatal("no type derived from the dominant theme")
	}
}

func cosine(a, b []float64) float64 {
	var num, na, nb float64
	for i := range a {
		num += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return num / (sqrt(na) * sqrt(nb))
}

func sqrt(x float64) float64 {
	// Newton iterations suffice for a test helper.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestAddPOIErrors(t *testing.T) {
	c := addCity(t)
	cases := []NewPOI{
		{Name: "bad type", Cat: poi.Acco, Coord: geo.Point{Lat: 48.85, Lon: 2.35}, Type: "igloo"},
		{Name: "bad cat", Cat: poi.Category(9), Coord: geo.Point{Lat: 48.85, Lon: 2.35}},
		{Name: "unknown tags", Cat: poi.Rest, Coord: geo.Point{Lat: 48.85, Lon: 2.35}, Tags: "zzz qqq xxx"},
		{Name: "bad coord", Cat: poi.Acco, Coord: geo.Point{Lat: 95, Lon: 0}, Type: "hotel"},
		{Name: "bad cost", Cat: poi.Acco, Coord: geo.Point{Lat: 48.85, Lon: 2.35}, Type: "hotel", Cost: -1},
	}
	for _, n := range cases {
		if _, err := c.AddPOI(n); err == nil {
			t.Errorf("%s: accepted", n.Name)
		}
	}
}

func TestAddPOIAfterJSONLoadRejectsTagged(t *testing.T) {
	// A city loaded from JSON has no LDA models; tagged categories must be
	// rejected with a helpful error, but acco/trans still work.
	c := addCity(t)
	var buf bytes.Buffer
	if err := c.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.AddPOI(NewPOI{
		Name: "x", Cat: poi.Rest, Coord: geo.Point{Lat: 48.85, Lon: 2.35}, Tags: "sushi",
	}); err == nil {
		t.Fatal("tagged AddPOI succeeded without topic models")
	}
	if _, err := loaded.AddPOI(NewPOI{
		Name: "y", Cat: poi.Trans, Coord: geo.Point{Lat: 48.85, Lon: 2.35}, Type: "tramstation",
	}); err != nil {
		t.Fatalf("untagged AddPOI failed on loaded city: %v", err)
	}
}

func TestAddPOIUsableByEngineQueries(t *testing.T) {
	c := addCity(t)
	c2, err := c.AddPOI(NewPOI{
		Name: "Central Added Museum", Cat: poi.Attr,
		Coord: geo.Point{Lat: 48.8566, Lon: 2.3522},
		Tags:  "museum art gallery exhibition painting museum art", Cost: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The new POI must be reachable through the spatial index.
	cat := poi.Attr
	got := c2.POIs.Nearest(geo.Point{Lat: 48.8566, Lon: 2.3522}, 1, &cat, nil)
	if len(got) != 1 || got[0].Name != "Central Added Museum" {
		t.Fatalf("nearest attraction = %v", got)
	}
}
