// Package vec provides the small dense-vector algebra GroupTravel needs:
// user/group profile vectors, item vectors, and the Cosine similarity used
// by the personalization term of Eq. 1 and the uniformity measure of §4.1.
package vec

import (
	"fmt"
	"math"
)

// Vector is a dense non-negative preference or item vector. All vectors in
// the paper (profiles ®u, ®g and item vectors ®i) have components in [0,1].
type Vector []float64

// New returns a zero vector of the given dimension.
func New(dim int) Vector { return make(Vector, dim) }

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dot returns the inner product. It panics on dimension mismatch — a
// mismatch always indicates a category-mixup bug upstream, never valid data.
func Dot(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot dimension mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // bounds-check elimination for b[i] below
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm.
func (v Vector) Norm() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the component sum.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the largest component, or 0 for an empty vector.
func (v Vector) Max() float64 {
	m := 0.0
	for i, x := range v {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Cosine returns the cosine similarity of a and b in [0,1] for non-negative
// vectors. A zero vector has similarity 0 with everything: this matches the
// paper's behaviour where a least-misery profile of a fully disagreeing
// group (all minima zero) personalizes nothing (Table 2 shows P≈0%).
func Cosine(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Cosine dimension mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // bounds-check elimination for b[i] below
	var dot, na2, nb2 float64
	for i, x := range a {
		y := b[i]
		dot += x * y
		na2 += x * x
		nb2 += y * y
	}
	na, nb := math.Sqrt(na2), math.Sqrt(nb2)
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / (na * nb)
	// Guard against floating-point drift outside [−1, 1].
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// CosineNormB is Cosine(a, b) for callers that already know nb = b.Norm():
// the norm of a and the dot product come out of one fused pass over a, and
// the repeated O(dim) walk of b is skipped entirely. Scoring loops that pit
// many items against one group vector hoist the group norm and call this.
// Bit-identical to Cosine(a, b) whenever nb == b.Norm(): the accumulators
// fold in the same order, they are merely interleaved in one loop.
func CosineNormB(a, b Vector, nb float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Cosine dimension mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var dot, na2 float64
	for i, x := range a {
		dot += x * b[i]
		na2 += x * x
	}
	na := math.Sqrt(na2)
	if na == 0 || nb == 0 {
		return 0
	}
	c := dot / (na * nb)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// Add returns a+b as a new vector.
func Add(a, b Vector) Vector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Add dimension mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a−b as a new vector (components may go negative; callers that
// need the paper's profile-update clamping use ClampNonNegative).
func Sub(a, b Vector) Vector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Sub dimension mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Scale returns s·v as a new vector.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// ClampNonNegative sets negative components to 0 in place and returns v.
// §3.3: "if any of the components of the updated vector ®g falls below 0,
// the value of this component will be set to 0."
func (v Vector) ClampNonNegative() Vector {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
	return v
}

// NormalizeSum rescales v in place so components sum to 1, mirroring the
// paper's profile construction u_j = r_j / Σ r_k. A zero vector is left
// unchanged. Returns v.
func (v Vector) NormalizeSum() Vector {
	s := v.Sum()
	if s == 0 {
		return v
	}
	for i := range v {
		v[i] /= s
	}
	return v
}

// Mean returns the component-wise mean of the vectors. It panics if vs is
// empty or dimensions differ.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("vec: Mean of empty set")
	}
	out := make(Vector, len(vs[0]))
	for _, v := range vs {
		if len(v) != len(out) {
			panic("vec: Mean dimension mismatch")
		}
		for i, x := range v {
			out[i] += x
		}
	}
	n := float64(len(vs))
	for i := range out {
		out[i] /= n
	}
	return out
}

// Equal reports component-wise equality within eps.
func Equal(a, b Vector, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

// InUnitRange reports whether all components lie in [0,1].
func (v Vector) InUnitRange() bool {
	for _, x := range v {
		if x < 0 || x > 1 || math.IsNaN(x) {
			return false
		}
	}
	return true
}
