package vec

import (
	"math"
	"testing"
	"testing/quick"

	"grouptravel/internal/rng"
)

func TestDot(t *testing.T) {
	if got := Dot(Vector{1, 2, 3}, Vector{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot mismatch did not panic")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestCosineIdentical(t *testing.T) {
	v := Vector{0.2, 0.5, 0.3}
	if c := Cosine(v, v); math.Abs(c-1) > 1e-12 {
		t.Fatalf("Cosine(v,v) = %v, want 1", c)
	}
}

func TestCosineOrthogonal(t *testing.T) {
	if c := Cosine(Vector{1, 0}, Vector{0, 1}); c != 0 {
		t.Fatalf("orthogonal cosine = %v, want 0", c)
	}
}

func TestCosineZeroVector(t *testing.T) {
	// The least-misery profile of a fully disagreeing group is all-zero;
	// the paper's Table 2 reports personalization ≈ 0 there.
	if c := Cosine(Vector{0, 0, 0}, Vector{1, 2, 3}); c != 0 {
		t.Fatalf("zero-vector cosine = %v, want 0", c)
	}
}

func TestCosineBoundsQuick(t *testing.T) {
	src := rng.New(1)
	f := func(_ uint8) bool {
		dim := 2 + src.Intn(10)
		a, b := New(dim), New(dim)
		for i := 0; i < dim; i++ {
			a[i], b[i] = src.Float64(), src.Float64()
		}
		c := Cosine(a, b)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineScaleInvariant(t *testing.T) {
	a := Vector{0.3, 0.1, 0.6}
	b := Vector{0.2, 0.7, 0.1}
	c1 := Cosine(a, b)
	c2 := Cosine(a.Scale(7), b.Scale(0.01))
	if math.Abs(c1-c2) > 1e-12 {
		t.Fatalf("cosine not scale invariant: %v vs %v", c1, c2)
	}
}

func TestAddSub(t *testing.T) {
	a, b := Vector{1, 2}, Vector{3, 5}
	if got := Add(a, b); got[0] != 4 || got[1] != 7 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(a, b); got[0] != -2 || got[1] != -3 {
		t.Fatalf("Sub = %v", got)
	}
	// Inputs untouched.
	if a[0] != 1 || b[0] != 3 {
		t.Fatal("Add/Sub mutated inputs")
	}
}

func TestClampNonNegative(t *testing.T) {
	v := Vector{0.5, -0.2, 0, -7}
	v.ClampNonNegative()
	want := Vector{0.5, 0, 0, 0}
	if !Equal(v, want, 0) {
		t.Fatalf("clamped = %v, want %v", v, want)
	}
}

func TestNormalizeSum(t *testing.T) {
	v := Vector{1, 3}
	v.NormalizeSum()
	if math.Abs(v[0]-0.25) > 1e-12 || math.Abs(v[1]-0.75) > 1e-12 {
		t.Fatalf("normalized = %v", v)
	}
	z := Vector{0, 0}
	z.NormalizeSum() // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero vector changed: %v", z)
	}
}

func TestNormalizeSumPropertyQuick(t *testing.T) {
	src := rng.New(2)
	f := func(_ uint8) bool {
		dim := 1 + src.Intn(12)
		v := New(dim)
		for i := range v {
			v[i] = src.Float64() * 5
		}
		if v.Sum() == 0 {
			return true
		}
		v.NormalizeSum()
		return math.Abs(v.Sum()-1) < 1e-9 && v.InUnitRange()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{{1, 2}, {3, 4}})
	if m[0] != 2 || m[1] != 3 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestMeanPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean of empty set did not panic")
		}
	}()
	Mean(nil)
}

func TestCloneIndependent(t *testing.T) {
	a := Vector{1, 2}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestMaxAndSum(t *testing.T) {
	v := Vector{0.1, 0.9, 0.4}
	if v.Max() != 0.9 {
		t.Fatalf("Max = %v", v.Max())
	}
	if math.Abs(v.Sum()-1.4) > 1e-12 {
		t.Fatalf("Sum = %v", v.Sum())
	}
	var empty Vector
	if empty.Max() != 0 {
		t.Fatalf("empty Max = %v", empty.Max())
	}
}

func TestInUnitRange(t *testing.T) {
	if !(Vector{0, 0.5, 1}).InUnitRange() {
		t.Fatal("valid vector rejected")
	}
	if (Vector{-0.1}).InUnitRange() || (Vector{1.1}).InUnitRange() || (Vector{math.NaN()}).InUnitRange() {
		t.Fatal("invalid vector accepted")
	}
}
