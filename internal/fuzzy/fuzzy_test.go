package fuzzy

import (
	"math"
	"testing"
	"testing/quick"

	"grouptravel/internal/geo"
	"grouptravel/internal/rng"
)

// twoBlobs generates two well-separated Gaussian clusters around Paris.
func twoBlobs(nPer int, seed int64) []geo.Point {
	src := rng.New(seed)
	centers := []geo.Point{{Lat: 48.83, Lon: 2.28}, {Lat: 48.89, Lon: 2.40}}
	var pts []geo.Point
	for _, c := range centers {
		for i := 0; i < nPer; i++ {
			pts = append(pts, geo.Point{
				Lat: c.Lat + 0.004*src.NormFloat64(),
				Lon: c.Lon + 0.004*src.NormFloat64(),
			})
		}
	}
	return pts
}

func TestClusterRecoverTwoBlobs(t *testing.T) {
	pts := twoBlobs(60, 1)
	norm := geo.NormalizerFor(pts)
	res, err := Cluster(pts, norm, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Each centroid must sit near a distinct blob center.
	blobs := []geo.Point{{Lat: 48.83, Lon: 2.28}, {Lat: 48.89, Lon: 2.40}}
	assigned := map[int]bool{}
	for _, c := range res.Centroids {
		best, bestD := -1, math.Inf(1)
		for bi, b := range blobs {
			if d := geo.Equirectangular(c, b); d < bestD {
				best, bestD = bi, d
			}
		}
		if bestD > 2.0 {
			t.Fatalf("centroid %v is %v km from nearest blob center", c, bestD)
		}
		if assigned[best] {
			t.Fatalf("both centroids converged on blob %d", best)
		}
		assigned[best] = true
	}
}

func TestMembershipRowsSumToOne(t *testing.T) {
	pts := twoBlobs(40, 2)
	norm := geo.NormalizerFor(pts)
	res, err := Cluster(pts, norm, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Weights {
		sum := 0.0
		for _, w := range row {
			if w < 0 || w > 1 {
				t.Fatalf("point %d: membership %v outside [0,1]", i, w)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("point %d: memberships sum to %v (Eq. 1 constraint)", i, sum)
		}
	}
}

func TestMembershipsAreFuzzy(t *testing.T) {
	// The reason the paper uses fuzzy clustering: points between clusters
	// belong to several. A point midway must have non-trivial weight on
	// both centroids.
	pts := twoBlobs(50, 3)
	mid := geo.Point{Lat: 48.86, Lon: 2.34}
	pts = append(pts, mid)
	norm := geo.NormalizerFor(pts)
	res, err := Cluster(pts, norm, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	row := res.Weights[len(pts)-1]
	if row[0] < 0.15 || row[1] < 0.15 {
		t.Fatalf("midpoint memberships %v not fuzzy", row)
	}
}

func TestNearPointsGetHigherMembership(t *testing.T) {
	pts := twoBlobs(50, 4)
	norm := geo.NormalizerFor(pts)
	res, err := Cluster(pts, norm, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		// The closest centroid must carry the largest membership.
		bestJ, bestD := -1, math.Inf(1)
		for j, c := range res.Centroids {
			if d := geo.Equirectangular(p, c); d < bestD {
				bestJ, bestD = j, d
			}
		}
		maxJ := 0
		for j, w := range res.Weights[i] {
			if w > res.Weights[i][maxJ] {
				maxJ = j
			}
		}
		if maxJ != bestJ {
			t.Fatalf("point %d: max membership on cluster %d, nearest is %d", i, maxJ, bestJ)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	pts := twoBlobs(40, 5)
	norm := geo.NormalizerFor(pts)
	r1, err := Cluster(pts, norm, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cluster(pts, norm, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for j := range r1.Centroids {
		if r1.Centroids[j] != r2.Centroids[j] {
			t.Fatal("same seed produced different centroids")
		}
	}
}

func TestClusterErrors(t *testing.T) {
	pts := twoBlobs(5, 6)
	norm := geo.NormalizerFor(pts)
	bad := []Config{
		{K: 0, M: 2, MaxIters: 10, Tol: 1e-4},
		{K: 1000, M: 2, MaxIters: 10, Tol: 1e-4},
		{K: 2, M: 1.0, MaxIters: 10, Tol: 1e-4}, // fuzzifier must be > 1
		{K: 2, M: 0, MaxIters: 10, Tol: 1e-4},
		{K: 2, M: 2, MaxIters: 0, Tol: 1e-4},
		{K: 2, M: 2, MaxIters: 10, Tol: 0},
	}
	for i, cfg := range bad {
		if _, err := Cluster(pts, norm, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestObjectiveImprovesOverInit(t *testing.T) {
	pts := twoBlobs(60, 7)
	norm := geo.NormalizerFor(pts)
	cfg := DefaultConfig(3)
	cfg.MaxIters = 1
	early, err := Cluster(pts, norm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxIters = 60
	late, err := Cluster(pts, norm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oe := Objective(pts, early, norm, cfg.M)
	ol := Objective(pts, late, norm, cfg.M)
	if ol > oe+1e-9 {
		t.Fatalf("FCM objective increased with more iterations: %v -> %v", oe, ol)
	}
}

func TestKEqualsN(t *testing.T) {
	pts := twoBlobs(2, 8) // 4 points
	norm := geo.NormalizerFor(pts)
	res, err := Cluster(pts, norm, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 4 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
}

func TestKEqualsOne(t *testing.T) {
	pts := twoBlobs(30, 9)
	norm := geo.NormalizerFor(pts)
	res, err := Cluster(pts, norm, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// All memberships must be 1 for the single cluster.
	for i, row := range res.Weights {
		if math.Abs(row[0]-1) > 1e-9 {
			t.Fatalf("point %d membership = %v", i, row[0])
		}
	}
	// The centroid must be central.
	r := geo.BoundingRect(pts)
	if !r.Contains(res.Centroids[0]) {
		t.Fatalf("single centroid %v outside bounds", res.Centroids[0])
	}
}

func TestSeedSpreadsCentroids(t *testing.T) {
	// With k-means++-style seeding on two far blobs, k=2 must rarely start
	// both centroids in one blob. Run several seeds and require spread.
	pts := twoBlobs(50, 10)
	norm := geo.NormalizerFor(pts)
	good := 0
	for seed := int64(0); seed < 10; seed++ {
		cfg := DefaultConfig(2)
		cfg.Seed = seed
		cfg.MaxIters = 1
		res, err := Cluster(pts, norm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if geo.Equirectangular(res.Centroids[0], res.Centroids[1]) > 3 {
			good++
		}
	}
	if good < 8 {
		t.Fatalf("seeding spread centroids in only %d/10 runs", good)
	}
}

func TestSpread(t *testing.T) {
	res := &Result{Centroids: []geo.Point{
		{Lat: 48.80, Lon: 2.30},
		{Lat: 48.90, Lon: 2.30},
	}}
	s := Spread(res)
	want := geo.Equirectangular(res.Centroids[0], res.Centroids[1])
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("Spread = %v, want %v", s, want)
	}
}

func TestMembershipSimplexQuick(t *testing.T) {
	src := rng.New(11)
	f := func(_ uint8) bool {
		n := 10 + src.Intn(30)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{Lat: src.Range(48.8, 48.92), Lon: src.Range(2.25, 2.42)}
		}
		norm := geo.NormalizerFor(pts)
		cfg := DefaultConfig(2 + src.Intn(3))
		cfg.MaxIters = 15
		res, err := Cluster(pts, norm, cfg)
		if err != nil {
			return false
		}
		for _, row := range res.Weights {
			sum := 0.0
			for _, w := range row {
				if w < -1e-12 {
					return false
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
