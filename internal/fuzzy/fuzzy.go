// Package fuzzy implements the fuzzy clustering at the heart of KFC [13]
// and GroupTravel's Eq. 1: positioning k centroids that cover a city while
// letting every POI participate in several clusters (a hotel or the Louvre
// can appear in multiple CIs — the reason the paper picks *fuzzy* over hard
// clustering, §3.2).
//
// # A note on the paper's formulation
//
// Eq. 1 writes the clustering term as a maximization of
// Σ_j Σ_i w_ij^f (1 − d(i,μ_j)) with Σ_j w_ij = 1 and "f ≤ 1". Taken
// literally this program is degenerate: for f < 1, Σ_j w_ij^f over the
// simplex is maximized by the uniform membership row, which earns a
// k^(1−f) multiplier regardless of where the centroids sit — so the
// optimum puts all k centroids on the same global median point
// (empirically: alternating optimization collapses within one iteration).
// The paper cites Bezdek's fuzzy c-means [20] and builds on KFC, and FCM
// is what those actually run, so this package implements the classic FCM
// program
//
//	minimize  Σ_j Σ_i w_ij^m d(i,μ_j)²,   Σ_j w_ij = 1,   m > 1
//
// with the standard closed-form alternating updates
//
//	w_ij = 1 / Σ_l (d_ij / d_il)^(2/(m−1)),   μ_j = Σ_i w_ij^m x_i / Σ_i w_ij^m .
//
// The Eq. 1 quantity Σ w^f (1−d) is still provided (Eq1Value) for
// reporting the objective the paper states.
//
// # Concurrency
//
// Cluster is a pure function: it never mutates its inputs and shares no
// state between calls, so any number of clusterings may run concurrently.
// Within one call the alternating updates are parallelized over a worker
// pool (Config.Workers) with results bit-identical to the sequential path
// for a fixed seed — see updateMemberships and updateCentroids for why.
package fuzzy

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"grouptravel/internal/geo"
	"grouptravel/internal/rng"
)

// Config controls a clustering run.
type Config struct {
	K        int     // number of clusters (CIs per travel package)
	M        float64 // FCM fuzzifier, > 1 (2 is the classic choice)
	MaxIters int     // cap on alternating updates
	Tol      float64 // centroid-movement convergence threshold in km
	Seed     int64   // seeding of the k-means++-style initialization

	// Workers is the number of goroutines the alternating updates may use:
	// 0 picks GOMAXPROCS, 1 forces the sequential path. Any value produces
	// bit-identical results — the membership update is partitioned by
	// Weights row and the centroid update by cluster, so every float is
	// accumulated in exactly the order the sequential loops use. Small
	// inputs run sequentially regardless (goroutine overhead would dominate).
	Workers int
}

// DefaultConfig returns the configuration used throughout the
// reproduction: k clusters with the classic fuzzifier m = 2.
func DefaultConfig(k int) Config {
	return Config{K: k, M: 2, MaxIters: 60, Tol: 1e-4, Seed: 1}
}

// Result holds the fitted centroids and membership matrix.
type Result struct {
	Centroids []geo.Point
	// Weights[i][j] is w_ij — how strongly point i belongs to cluster j.
	// Each row sums to 1 (the Eq. 1 constraint).
	Weights [][]float64
	// Iterations actually performed before convergence.
	Iterations int
}

// Cluster fits k fuzzy centroids to the points. norm supplies the
// normalized distance of Eq. 1 (derive it from the same point cloud).
func Cluster(points []geo.Point, norm geo.Normalizer, cfg Config) (*Result, error) {
	n := len(points)
	switch {
	case cfg.K < 1:
		return nil, fmt.Errorf("fuzzy: k = %d", cfg.K)
	case n < cfg.K:
		return nil, fmt.Errorf("fuzzy: %d points for k = %d clusters", n, cfg.K)
	case cfg.M <= 1:
		return nil, fmt.Errorf("fuzzy: need fuzzifier m > 1, got %v", cfg.M)
	case cfg.MaxIters < 1:
		return nil, fmt.Errorf("fuzzy: MaxIters = %d", cfg.MaxIters)
	case cfg.Tol <= 0:
		return nil, fmt.Errorf("fuzzy: Tol = %v", cfg.Tol)
	}

	centroids := seedCentroids(points, cfg)
	// One flat backing array for the whole membership matrix: n+1 small
	// allocations become 2, and the rows sit contiguously in cache order.
	weights := make([][]float64, n)
	back := make([]float64, n*cfg.K)
	for i := range weights {
		weights[i] = back[i*cfg.K : (i+1)*cfg.K : (i+1)*cfg.K]
	}
	power := 2 / (cfg.M - 1)
	workers := cfg.effectiveWorkers(n)

	res := &Result{Centroids: centroids, Weights: weights}
	for it := 0; it < cfg.MaxIters; it++ {
		res.Iterations = it + 1
		updateMemberships(points, centroids, weights, norm, power, workers)
		moved := updateCentroids(points, centroids, weights, cfg.M, workers)
		if moved < cfg.Tol {
			break
		}
	}
	// Final membership pass against the converged centroids.
	updateMemberships(points, centroids, weights, norm, power, workers)
	return res, nil
}

// minPointsPerWorker gates automatic parallelism: below this many points
// per goroutine the fan-out overhead dominates the arithmetic it saves.
const minPointsPerWorker = 512

// effectiveWorkers resolves Config.Workers against the input size. An
// explicit Workers > 1 is always honored (tests rely on exercising the
// parallel path on small inputs); the automatic setting (Workers == 0)
// backs off to sequential when the input is too small to amortize
// goroutines.
func (cfg Config) effectiveWorkers(n int) int {
	w := cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if limit := n / minPointsPerWorker; w > limit {
			w = limit
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// seedCentroids spreads initial centroids with a k-means++-style farthest-
// point heuristic: the first centroid is a random point, each next one is
// drawn proportionally to squared distance from the closest chosen
// centroid. Good spread at initialization is what lets the final TP cover
// the city (representativity).
func seedCentroids(points []geo.Point, cfg Config) []geo.Point {
	src := rng.New(cfg.Seed)
	n := len(points)
	centroids := make([]geo.Point, 0, cfg.K)
	centroids = append(centroids, points[src.Intn(n)])
	dist2 := make([]float64, n)
	for len(centroids) < cfg.K {
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := geo.Equirectangular(p, c); d < best {
					best = d
				}
			}
			dist2[i] = best * best
		}
		centroids = append(centroids, points[src.WeightedIndex(dist2)])
	}
	return centroids
}

// updateMemberships recomputes the FCM memberships
// w_ij = 1 / Σ_l (d_ij/d_il)^(2/(m−1)). A point coinciding with one or
// more centroids splits its membership crisply among those centroids.
//
// The update is row-independent, so with workers > 1 the rows of Weights
// are partitioned into contiguous chunks, one goroutine each. Every row is
// computed by exactly the same arithmetic in the same order as the
// sequential path, so results are bit-identical at any worker count.
func updateMemberships(points []geo.Point, centroids []geo.Point, weights [][]float64, norm geo.Normalizer, power float64, workers int) {
	n := len(points)
	if workers <= 1 {
		membershipRows(points, centroids, weights, norm, power, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			membershipRows(points, centroids, weights, norm, power, start, end)
		}(start, end)
	}
	wg.Wait()
}

// membershipRows updates Weights rows [start, end).
func membershipRows(points []geo.Point, centroids []geo.Point, weights [][]float64, norm geo.Normalizer, power float64, start, end int) {
	k := len(centroids)
	d := make([]float64, k)
	for i := start; i < end; i++ {
		p := points[i]
		row := weights[i]
		// Batched distance kernel: one deg2rad of p per row instead of one
		// per (row, centroid) pair; bit-identical to the scalar calls.
		norm.DistancesTo(d, p, centroids)
		zeros := 0
		for _, v := range d {
			if v == 0 {
				zeros++
			}
		}
		if zeros > 0 {
			// Crisp split among coincident centroids.
			u := 1 / float64(zeros)
			for j := range row {
				if d[j] == 0 {
					row[j] = u
				} else {
					row[j] = 0
				}
			}
			continue
		}
		for j := range row {
			sum := 0.0
			if power == 2 { // the classic m = 2: avoid math.Pow in the hot loop
				for l := 0; l < k; l++ {
					r := d[j] / d[l]
					sum += r * r
				}
			} else {
				for l := 0; l < k; l++ {
					sum += math.Pow(d[j]/d[l], power)
				}
			}
			row[j] = 1 / sum
		}
	}
}

// updateCentroids moves each centroid to the w^m-weighted mean of the
// points (the exact FCM update for squared distances), returning the
// largest movement in km.
//
// With workers > 1 the clusters are striped across goroutines, each with
// its own weight scratch. Every cluster's weighted sum still runs over the
// points in sequential order (parallelism is across clusters, never within
// one accumulation), so centroids are bit-identical at any worker count;
// the move reduction is a max, which is order-independent.
func updateCentroids(points []geo.Point, centroids []geo.Point, weights [][]float64, m float64, workers int) float64 {
	k := len(centroids)
	n := len(points)
	moves := make([]float64, k)
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		w := make([]float64, n)
		for j := 0; j < k; j++ {
			moves[j] = centroidStep(points, centroids, weights, m, w, j)
		}
	} else {
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				w := make([]float64, n)
				for j := wk; j < k; j += workers {
					moves[j] = centroidStep(points, centroids, weights, m, w, j)
				}
			}(wk)
		}
		wg.Wait()
	}
	maxMove := 0.0
	for _, mv := range moves {
		if mv > maxMove {
			maxMove = mv
		}
	}
	return maxMove
}

// centroidStep recomputes centroid j, returning how far it moved in km
// (0 for a dead cluster, whose centroid stays put).
func centroidStep(points []geo.Point, centroids []geo.Point, weights [][]float64, m float64, w []float64, j int) float64 {
	n := len(points)
	total := 0.0
	if m == 2 {
		for i := 0; i < n; i++ {
			x := weights[i][j]
			w[i] = x * x
			total += w[i]
		}
	} else {
		for i := 0; i < n; i++ {
			w[i] = math.Pow(weights[i][j], m)
			total += w[i]
		}
	}
	if total == 0 {
		return 0 // dead cluster: leave the centroid where it is
	}
	next := geo.Centroid(points, w)
	d := geo.Equirectangular(centroids[j], next)
	centroids[j] = next
	return d
}

// Objective evaluates the FCM program being minimized:
// J = Σ_j Σ_i w_ij^m d(i,μ_j)² over normalized distances. Lower is better.
func Objective(points []geo.Point, res *Result, norm geo.Normalizer, m float64) float64 {
	total := 0.0
	for i, p := range points {
		for j, c := range res.Centroids {
			d := norm.Distance(p, c)
			total += math.Pow(res.Weights[i][j], m) * d * d
		}
	}
	return total
}

// Eq1Value evaluates the clustering term exactly as the paper's Eq. 1
// states it — Σ_j Σ_i w_ij^f (1 − d(i,μ_j)) — at the fitted solution, for
// reporting. Higher is better.
func Eq1Value(points []geo.Point, res *Result, norm geo.Normalizer, f float64) float64 {
	total := 0.0
	for i, p := range points {
		for j, c := range res.Centroids {
			s := 1 - norm.Distance(p, c)
			total += math.Pow(res.Weights[i][j], f) * s
		}
	}
	return total
}

// Spread returns the summed pairwise distance between centroids in km —
// the representativity measure of Eq. 2 applied to a clustering result.
func Spread(res *Result) float64 {
	sum := 0.0
	for i := 0; i < len(res.Centroids); i++ {
		for j := i + 1; j < len(res.Centroids); j++ {
			sum += geo.Equirectangular(res.Centroids[i], res.Centroids[j])
		}
	}
	return sum
}
