package fuzzy

import (
	"testing"

	"grouptravel/internal/geo"
	"grouptravel/internal/rng"
)

func clusterPoints(n int, seed int64) []geo.Point {
	src := rng.New(seed)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{Lat: src.Range(48.80, 48.92), Lon: src.Range(2.25, 2.42)}
	}
	return pts
}

// TestParallelBitIdentical is the determinism contract of the worker pool:
// for a fixed seed, any worker count produces byte-identical centroids and
// memberships to the sequential path.
func TestParallelBitIdentical(t *testing.T) {
	pts := clusterPoints(700, 17)
	norm := geo.NormalizerFor(pts)

	for _, m := range []float64{2, 1.7} { // exercise both the m=2 fast path and math.Pow
		cfg := DefaultConfig(5)
		cfg.M = m
		cfg.Workers = 1
		seq, err := Cluster(pts, norm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			cfg.Workers = workers
			par, err := Cluster(pts, norm, cfg)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if par.Iterations != seq.Iterations {
				t.Fatalf("workers=%d m=%v: %d iterations vs %d sequential", workers, m, par.Iterations, seq.Iterations)
			}
			for j := range seq.Centroids {
				if par.Centroids[j] != seq.Centroids[j] {
					t.Fatalf("workers=%d m=%v: centroid %d differs: %+v vs %+v",
						workers, m, j, par.Centroids[j], seq.Centroids[j])
				}
			}
			for i := range seq.Weights {
				for j := range seq.Weights[i] {
					if par.Weights[i][j] != seq.Weights[i][j] {
						t.Fatalf("workers=%d m=%v: weight [%d][%d] differs: %v vs %v",
							workers, m, i, j, par.Weights[i][j], seq.Weights[i][j])
					}
				}
			}
		}
	}
}

// TestEffectiveWorkers pins the auto-gating policy: tiny inputs stay
// sequential under the automatic setting, explicit requests are honored.
func TestEffectiveWorkers(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{1, 10000, 1},
		{8, 100, 8},     // explicit request honored on small input
		{200, 100, 100}, // but never more workers than points
		{0, 100, 1},     // auto: too small to amortize goroutines
	}
	for _, c := range cases {
		cfg := Config{Workers: c.workers}
		if got := cfg.effectiveWorkers(c.n); got != c.want {
			t.Errorf("effectiveWorkers(workers=%d, n=%d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
	// Auto on a large input uses more than one worker (machine-dependent
	// exact count).
	cfg := Config{}
	if got := cfg.effectiveWorkers(1 << 20); got < 2 {
		t.Skipf("single-core machine: auto workers = %d", got)
	}
}
