// Package interact implements §3.3 of the paper: the customization
// operators group members apply to a generated travel package —
//
//	REMOVE(i, CI)                 drop POI i from a Composite Item
//	ADD(i, CI)                    add POI i (closest candidates offered)
//	REPLACE(i, CI)                swap i for the closest same-category POI
//	GENERATE(RECTANGLE(x,y,w,h))  build a new valid, cohesive CI in an area
//
// — and the refinement of the group profile from those interactions
// (implicit feedback): g ← g + g⁺ − g⁻ with negative components clamped
// to zero, under either the batch strategy (pool all members' operations,
// update the group profile directly) or the individual strategy (refine
// each member's own profile, then re-aggregate with the consensus method).
package interact

import (
	"fmt"

	"grouptravel/internal/ci"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
)

// OpKind identifies one of the §3.3 atomic operations.
type OpKind uint8

const (
	OpRemove OpKind = iota
	OpAdd
	OpReplace
	OpGenerate
)

// String returns the paper's operator name.
func (k OpKind) String() string {
	switch k {
	case OpRemove:
		return "REMOVE"
	case OpAdd:
		return "ADD"
	case OpReplace:
		return "REPLACE"
	case OpGenerate:
		return "GENERATE"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// ParseOpKind inverts String — used when deserializing persisted logs.
func ParseOpKind(s string) (OpKind, error) {
	switch s {
	case "REMOVE":
		return OpRemove, nil
	case "ADD":
		return OpAdd, nil
	case "REPLACE":
		return OpReplace, nil
	case "GENERATE":
		return OpGenerate, nil
	default:
		return 0, fmt.Errorf("interact: unknown op kind %q", s)
	}
}

// Op is one logged interaction. Added and Removed carry the POIs the
// operation effectively added to / removed from the package — REPLACE logs
// one of each, GENERATE logs all items of the new CI as added.
type Op struct {
	Kind    OpKind
	Member  int // index of the acting group member
	CIIndex int // affected CI (the new CI's index for GENERATE)
	Added   []*poi.POI
	Removed []*poi.POI
}

// Session is an interactive customization session over one travel package.
// All mutations go through the session so that every interaction is logged
// for profile refinement.
type Session struct {
	city *dataset.City
	tp   *core.TravelPackage
	log  []Op
}

// NewSession starts a customization session. The package is deep-copied at
// the CI level: the caller's TravelPackage is never mutated.
func NewSession(city *dataset.City, tp *core.TravelPackage) (*Session, error) {
	if city == nil || tp == nil {
		return nil, fmt.Errorf("interact: nil city or package")
	}
	cp := *tp
	cp.CIs = make([]*ci.CI, len(tp.CIs))
	for i, c := range tp.CIs {
		cp.CIs[i] = c.Clone()
	}
	return &Session{city: city, tp: &cp}, nil
}

// Package returns the session's current (customized) travel package.
func (s *Session) Package() *core.TravelPackage { return s.tp }

// Log returns the logged operations in application order (shared slice;
// do not mutate).
func (s *Session) Log() []Op { return s.log }

// SetLog replaces the session's interaction log. It exists for restoring a
// persisted session: the ops were already applied to the package before it
// was saved, so they are not re-applied — only the log, which drives
// profile refinement, is reinstated.
func (s *Session) SetLog(ops []Op) { s.log = append([]Op(nil), ops...) }

// LookupPOI resolves a POI id in the session's city, or nil — useful for
// moderation policies that inspect a request's target before it applies.
func (s *Session) LookupPOI(id int) *poi.POI { return s.city.POIs.ByID(id) }

func (s *Session) ciAt(idx int) (*ci.CI, error) {
	if idx < 0 || idx >= len(s.tp.CIs) {
		return nil, fmt.Errorf("interact: CI index %d out of range [0,%d)", idx, len(s.tp.CIs))
	}
	return s.tp.CIs[idx], nil
}

// Remove applies REMOVE(i, CI): drops the POI with id poiID from the CI at
// ciIdx, acting on behalf of member.
func (s *Session) Remove(member, ciIdx, poiID int) error {
	c, err := s.ciAt(ciIdx)
	if err != nil {
		return err
	}
	for i, it := range c.Items {
		if it.ID == poiID {
			c.Items = append(c.Items[:i:i], c.Items[i+1:]...)
			s.log = append(s.log, Op{Kind: OpRemove, Member: member, CIIndex: ciIdx, Removed: []*poi.POI{it}})
			return nil
		}
	}
	return fmt.Errorf("interact: POI %d not in CI %d", poiID, ciIdx)
}

// AddCandidates lists the closest POIs to the CI that satisfy the user's
// filter — "the closest items to CI satisfying the user filter are
// displayed for the user to choose from" (§3.3). typeFilter may be empty
// to accept any type; POIs already in the CI are excluded.
func (s *Session) AddCandidates(ciIdx int, cat poi.Category, typeFilter string, k int) ([]*poi.POI, error) {
	c, err := s.ciAt(ciIdx)
	if err != nil {
		return nil, err
	}
	return s.city.POIs.Nearest(c.Center(), k, &cat, func(p *poi.POI) bool {
		if c.Contains(p.ID) {
			return false
		}
		return typeFilter == "" || p.Type == typeFilter
	}), nil
}

// Add applies ADD(i, CI): inserts the POI with id poiID into the CI at
// ciIdx on behalf of member.
func (s *Session) Add(member, ciIdx, poiID int) error {
	c, err := s.ciAt(ciIdx)
	if err != nil {
		return err
	}
	p := s.city.POIs.ByID(poiID)
	if p == nil {
		return fmt.Errorf("interact: unknown POI %d", poiID)
	}
	if c.Contains(poiID) {
		return fmt.Errorf("interact: POI %d already in CI %d", poiID, ciIdx)
	}
	c.Items = append(c.Items, p)
	s.log = append(s.log, Op{Kind: OpAdd, Member: member, CIIndex: ciIdx, Added: []*poi.POI{p}})
	return nil
}

// Replace applies REPLACE(i, CI): swaps the POI with id poiID for the
// system's recommendation — "the closest POI j in terms of geographic
// distance and such that i.cat = j.cat" (§3.3) among POIs not already in
// the CI. It returns the replacement.
func (s *Session) Replace(member, ciIdx, poiID int) (*poi.POI, error) {
	c, err := s.ciAt(ciIdx)
	if err != nil {
		return nil, err
	}
	var old *poi.POI
	var pos int
	for i, it := range c.Items {
		if it.ID == poiID {
			old, pos = it, i
			break
		}
	}
	if old == nil {
		return nil, fmt.Errorf("interact: POI %d not in CI %d", poiID, ciIdx)
	}
	cat := old.Cat
	cands := s.city.POIs.Nearest(old.Coord, 1, &cat, func(p *poi.POI) bool {
		return p.ID != old.ID && !c.Contains(p.ID)
	})
	if len(cands) == 0 {
		return nil, fmt.Errorf("interact: no replacement available for POI %d", poiID)
	}
	neu := cands[0]
	c.Items[pos] = neu
	s.log = append(s.log, Op{
		Kind: OpReplace, Member: member, CIIndex: ciIdx,
		Added: []*poi.POI{neu}, Removed: []*poi.POI{old},
	})
	return neu, nil
}

// Generate applies GENERATE(RECTANGLE(...)): builds a new valid, cohesive
// CI centered in the rectangle and appends it to the package. Items inside
// the rectangle are preferred; if the rectangle alone cannot satisfy the
// query, the build falls back to the closest POIs around the rectangle
// center. The group profile of the package (if any) personalizes the new
// CI exactly like the original build.
func (s *Session) Generate(member int, rect geo.Rect) (*ci.CI, error) {
	builder := &ci.Builder{
		Coll:  s.city.POIs,
		Query: s.tp.Query,
		Group: s.tp.Group,
		Beta:  s.tp.Params.Beta,
		Gamma: s.tp.Params.Gamma,
		Norm:  s.city.POIs.Normalizer(),
	}
	if builder.Beta == 0 {
		builder.Beta = 1 // a zero-β package still wants a *cohesive* new CI
	}
	center := rect.Center()

	// First try: restrict to POIs inside the rectangle.
	outside := make(map[int]bool)
	for _, p := range s.city.POIs.All() {
		if !rect.Contains(p.Coord) {
			outside[p.ID] = true
		}
	}
	newCI, err := builder.Build(center, outside)
	if err != nil {
		// Fall back to an unrestricted build around the rectangle center.
		newCI, err = builder.Build(center, nil)
		if err != nil {
			return nil, fmt.Errorf("interact: GENERATE failed: %w", err)
		}
	}
	s.tp.CIs = append(s.tp.CIs, newCI)
	s.log = append(s.log, Op{
		Kind: OpGenerate, Member: member, CIIndex: len(s.tp.CIs) - 1,
		Added: append([]*poi.POI(nil), newCI.Items...),
	})
	return newCI, nil
}

// DeleteCI empties the CI at ciIdx by iteratively removing its items (the
// paper models CI deletion as repeated REMOVE, §3.3) and drops it from the
// package.
func (s *Session) DeleteCI(member, ciIdx int) error {
	c, err := s.ciAt(ciIdx)
	if err != nil {
		return err
	}
	for len(c.Items) > 0 {
		if err := s.Remove(member, ciIdx, c.Items[0].ID); err != nil {
			return err
		}
	}
	s.tp.CIs = append(s.tp.CIs[:ciIdx:ciIdx], s.tp.CIs[ciIdx+1:]...)
	return nil
}

// AddedRemoved pools the added and removed POIs across the given ops.
func AddedRemoved(ops []Op) (added, removed []*poi.POI) {
	for _, op := range ops {
		added = append(added, op.Added...)
		removed = append(removed, op.Removed...)
	}
	return added, removed
}

// OpsByMember splits an operation log per acting member (for the
// individual refinement strategy).
func OpsByMember(ops []Op) map[int][]Op {
	out := make(map[int][]Op)
	for _, op := range ops {
		out[op.Member] = append(out[op.Member], op)
	}
	return out
}
