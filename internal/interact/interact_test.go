package interact

import (
	"math"
	"testing"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

var (
	cachedCity   *dataset.City
	cachedEngine *core.Engine
)

func setup(t *testing.T) (*dataset.City, *core.Engine) {
	t.Helper()
	if cachedCity == nil {
		c, err := dataset.Generate(dataset.TestSpec("InteractCity", 11))
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		cachedCity, cachedEngine = c, e
	}
	return cachedCity, cachedEngine
}

func buildGroup(t *testing.T, city *dataset.City, seed int64) (*profile.Group, *profile.Profile) {
	t.Helper()
	src := rng.New(seed)
	members := make([]*profile.Profile, 4)
	for i := range members {
		members[i] = profile.GenerateRandomProfile(city.Schema, src)
	}
	g, err := profile.NewGroup(city.Schema, members)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := consensus.GroupProfile(g, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	return g, gp
}

func session(t *testing.T, seed int64) (*Session, *profile.Group, *profile.Profile) {
	t.Helper()
	city, e := setup(t)
	g, gp := buildGroup(t, city, seed)
	tp, err := e.Build(gp, query.Default(), core.DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(city, tp)
	if err != nil {
		t.Fatal(err)
	}
	return s, g, gp
}

func TestSessionDoesNotMutateOriginal(t *testing.T) {
	city, e := setup(t)
	_, gp := buildGroup(t, city, 1)
	tp, err := e.Build(gp, query.Default(), core.DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	before := len(tp.CIs[0].Items)
	s, err := NewSession(city, tp)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(0, 0, tp.CIs[0].Items[0].ID); err != nil {
		t.Fatal(err)
	}
	if len(tp.CIs[0].Items) != before {
		t.Fatal("session mutated the caller's package")
	}
	if len(s.Package().CIs[0].Items) != before-1 {
		t.Fatal("session did not apply the removal to its own copy")
	}
}

func TestRemove(t *testing.T) {
	s, _, _ := session(t, 2)
	target := s.Package().CIs[1].Items[2]
	if err := s.Remove(0, 1, target.ID); err != nil {
		t.Fatal(err)
	}
	if s.Package().CIs[1].Contains(target.ID) {
		t.Fatal("POI still present after REMOVE")
	}
	log := s.Log()
	if len(log) != 1 || log[0].Kind != OpRemove || log[0].Removed[0].ID != target.ID {
		t.Fatalf("log = %+v", log)
	}
	// Removing again must fail.
	if err := s.Remove(0, 1, target.ID); err == nil {
		t.Fatal("double removal accepted")
	}
}

func TestAddAndCandidates(t *testing.T) {
	s, _, _ := session(t, 3)
	cands, err := s.AddCandidates(0, poi.Attr, "", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no ADD candidates")
	}
	// Candidates must not already be in the CI and must match the category.
	for _, c := range cands {
		if c.Cat != poi.Attr {
			t.Fatalf("candidate %d has category %v", c.ID, c.Cat)
		}
		if s.Package().CIs[0].Contains(c.ID) {
			t.Fatalf("candidate %d already in CI", c.ID)
		}
	}
	if err := s.Add(1, 0, cands[0].ID); err != nil {
		t.Fatal(err)
	}
	if !s.Package().CIs[0].Contains(cands[0].ID) {
		t.Fatal("ADD did not insert the POI")
	}
	// Adding a duplicate must fail.
	if err := s.Add(1, 0, cands[0].ID); err == nil {
		t.Fatal("duplicate ADD accepted")
	}
	// Unknown POI.
	if err := s.Add(1, 0, 987654); err == nil {
		t.Fatal("unknown POI accepted")
	}
}

func TestAddCandidatesTypeFilter(t *testing.T) {
	s, _, _ := session(t, 4)
	city, _ := setup(t)
	// Use an accommodation type that exists in the city.
	typ := city.POIs.ByCategory(poi.Acco)[0].Type
	cands, err := s.AddCandidates(0, poi.Acco, typ, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Type != typ {
			t.Fatalf("filter violated: got type %q want %q", c.Type, typ)
		}
	}
}

func TestReplaceRecommendsClosestSameCategory(t *testing.T) {
	s, _, _ := session(t, 5)
	city, _ := setup(t)
	c := s.Package().CIs[0]
	old := c.Items[0]
	neu, err := s.Replace(2, 0, old.ID)
	if err != nil {
		t.Fatal(err)
	}
	if neu.Cat != old.Cat {
		t.Fatalf("replacement category %v, want %v", neu.Cat, old.Cat)
	}
	if c.Contains(old.ID) || !c.Contains(neu.ID) {
		t.Fatal("REPLACE did not swap items")
	}
	// The recommendation must be the geographically closest same-category
	// POI not already in the CI.
	for _, p := range city.POIs.ByCategory(old.Cat) {
		if p.ID == old.ID || p.ID == neu.ID || c.Contains(p.ID) {
			continue
		}
		if geo.Equirectangular(old.Coord, p.Coord) < geo.Equirectangular(old.Coord, neu.Coord)-1e-12 {
			t.Fatalf("POI %d is closer to the removed item than the recommendation", p.ID)
		}
	}
	// Log records one add and one remove.
	last := s.Log()[len(s.Log())-1]
	if last.Kind != OpReplace || len(last.Added) != 1 || len(last.Removed) != 1 {
		t.Fatalf("replace log = %+v", last)
	}
}

func TestGenerateInRectangle(t *testing.T) {
	s, _, _ := session(t, 6)
	city, _ := setup(t)
	// A rectangle around the densest area: the city center.
	bounds := city.POIs.Bounds()
	rect := geo.Rect{
		Lat:    bounds.Lat - bounds.Height*0.25,
		Lon:    bounds.Lon + bounds.Width*0.25,
		Width:  bounds.Width * 0.5,
		Height: bounds.Height * 0.5,
	}
	before := len(s.Package().CIs)
	newCI, err := s.Generate(0, rect)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Package().CIs) != before+1 {
		t.Fatal("GENERATE did not append a CI")
	}
	if err := s.Package().Query.CheckCI(newCI.Items); err != nil {
		t.Fatalf("generated CI invalid: %v", err)
	}
	// The CI must be anchored in the rectangle.
	if !rect.Contains(newCI.Centroid) {
		t.Fatalf("generated centroid %v outside rectangle", newCI.Centroid)
	}
	last := s.Log()[len(s.Log())-1]
	if last.Kind != OpGenerate || len(last.Added) != len(newCI.Items) {
		t.Fatalf("generate log = %+v", last)
	}
}

func TestGenerateTinyRectangleFallsBack(t *testing.T) {
	s, _, _ := session(t, 7)
	// A rectangle so small it contains no POIs: the build must fall back
	// to the area around the center rather than failing.
	rect := geo.Rect{Lat: 48.8566, Lon: 2.3522, Width: 1e-7, Height: 1e-7}
	newCI, err := s.Generate(0, rect)
	if err != nil {
		t.Fatalf("tiny-rectangle GENERATE failed: %v", err)
	}
	if err := s.Package().Query.CheckCI(newCI.Items); err != nil {
		t.Fatalf("fallback CI invalid: %v", err)
	}
}

func TestDeleteCI(t *testing.T) {
	s, _, _ := session(t, 8)
	before := len(s.Package().CIs)
	items := len(s.Package().CIs[0].Items)
	if err := s.DeleteCI(0, 0); err != nil {
		t.Fatal(err)
	}
	if len(s.Package().CIs) != before-1 {
		t.Fatal("CI not deleted")
	}
	// Deletion is modeled as iterative REMOVE: one log entry per item.
	if len(s.Log()) != items {
		t.Fatalf("expected %d removal ops, got %d", items, len(s.Log()))
	}
}

func TestBadIndices(t *testing.T) {
	s, _, _ := session(t, 9)
	if err := s.Remove(0, 99, 1); err == nil {
		t.Fatal("bad CI index accepted by Remove")
	}
	if _, err := s.AddCandidates(-1, poi.Attr, "", 3); err == nil {
		t.Fatal("bad CI index accepted by AddCandidates")
	}
	if _, err := s.Replace(0, 0, -42); err == nil {
		t.Fatal("unknown POI accepted by Replace")
	}
}

func TestNewSessionErrors(t *testing.T) {
	city, _ := setup(t)
	if _, err := NewSession(nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
	if _, err := NewSession(city, nil); err == nil {
		t.Fatal("nil package accepted")
	}
}

func TestRefineProfileDirection(t *testing.T) {
	city, _ := setup(t)
	_, gp := buildGroup(t, city, 10)
	// Adding attractions of one kind must raise the profile along that
	// item's vector; removing must lower it.
	attr := city.POIs.ByCategory(poi.Attr)[0]
	strongestDim := 0
	for j, v := range attr.Vector {
		if v > attr.Vector[strongestDim] {
			strongestDim = j
		}
	}
	plus, err := RefineProfile(gp, []*poi.POI{attr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plus.Vector(poi.Attr)[strongestDim] < gp.Vector(poi.Attr)[strongestDim] {
		t.Fatal("ADD did not raise the preference for the added item's type")
	}
	minus, err := RefineProfile(gp, nil, []*poi.POI{attr})
	if err != nil {
		t.Fatal(err)
	}
	if minus.Vector(poi.Attr)[strongestDim] > gp.Vector(poi.Attr)[strongestDim] {
		t.Fatal("REMOVE did not lower the preference for the removed item's type")
	}
	// Other categories are untouched.
	if !vec.Equal(plus.Vector(poi.Rest), gp.Vector(poi.Rest), 0) {
		t.Fatal("refinement leaked into another category")
	}
}

func TestRefineClampsToUnitRange(t *testing.T) {
	city, _ := setup(t)
	schema := city.Schema
	p := profile.New(schema)
	// Near-zero profile: removals must clamp at 0.
	attr := city.POIs.ByCategory(poi.Attr)[0]
	out, err := RefineProfile(p, nil, []*poi.POI{attr})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Vector(poi.Attr).InUnitRange() {
		t.Fatalf("clamped profile out of range: %v", out.Vector(poi.Attr))
	}
	for _, x := range out.Vector(poi.Attr) {
		if x != 0 {
			t.Fatalf("negative component not clamped to 0: %v", out.Vector(poi.Attr))
		}
	}
	// Near-one profile: additions must cap at 1.
	full := profile.New(schema)
	ones := vec.New(schema.Dim(poi.Attr))
	for i := range ones {
		ones[i] = 1
	}
	_ = full.SetVector(poi.Attr, ones)
	out, err = RefineProfile(full, []*poi.POI{attr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Vector(poi.Attr).InUnitRange() {
		t.Fatalf(">1 component not capped: %v", out.Vector(poi.Attr))
	}
}

func TestRefineBatchPoolsAllMembers(t *testing.T) {
	s, _, gp := session(t, 11)
	// Two different members interact.
	c0 := s.Package().CIs[0]
	if err := s.Remove(0, 0, c0.Items[0].ID); err != nil {
		t.Fatal(err)
	}
	cands, err := s.AddCandidates(1, poi.Rest, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(3, 1, cands[0].ID); err != nil {
		t.Fatal(err)
	}
	refined, err := RefineBatch(gp, s.Log())
	if err != nil {
		t.Fatal(err)
	}
	// The refined profile must differ from the original.
	changed := false
	for _, c := range poi.Categories {
		if !vec.Equal(refined.Vector(c), gp.Vector(c), 1e-12) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("batch refinement changed nothing")
	}
}

func TestRefineIndividualOnlyTouchesActors(t *testing.T) {
	s, g, _ := session(t, 12)
	c0 := s.Package().CIs[0]
	if err := s.Remove(2, 0, c0.Items[0].ID); err != nil { // member 2 acts
		t.Fatal(err)
	}
	ng, gp2, err := RefineIndividual(g, consensus.PairwiseDis, s.Log())
	if err != nil {
		t.Fatal(err)
	}
	if gp2 == nil {
		t.Fatal("no refined group profile")
	}
	// Members 0, 1, 3 kept their profiles; member 2's changed.
	for i := range g.Members {
		same := vec.Equal(ng.Members[i].Concat(), g.Members[i].Concat(), 1e-12)
		if i == 2 && same {
			t.Fatal("acting member's profile unchanged")
		}
		if i != 2 && !same {
			t.Fatalf("non-acting member %d's profile changed", i)
		}
	}
}

func TestRefineIndividualUnknownMember(t *testing.T) {
	_, g, _ := session(t, 13)
	ops := []Op{{Kind: OpRemove, Member: 99}}
	if _, _, err := RefineIndividual(g, consensus.PairwiseDis, ops); err == nil {
		t.Fatal("op by unknown member accepted")
	}
}

func TestOpsByMemberAndAddedRemoved(t *testing.T) {
	p1 := &poi.POI{ID: 1, Cat: poi.Rest, Vector: vec.Vector{1}}
	p2 := &poi.POI{ID: 2, Cat: poi.Rest, Vector: vec.Vector{1}}
	ops := []Op{
		{Kind: OpAdd, Member: 0, Added: []*poi.POI{p1}},
		{Kind: OpRemove, Member: 1, Removed: []*poi.POI{p2}},
		{Kind: OpAdd, Member: 0, Added: []*poi.POI{p2}},
	}
	by := OpsByMember(ops)
	if len(by[0]) != 2 || len(by[1]) != 1 {
		t.Fatalf("OpsByMember = %v", by)
	}
	a, r := AddedRemoved(ops)
	if len(a) != 2 || len(r) != 1 {
		t.Fatalf("AddedRemoved = %d added, %d removed", len(a), len(r))
	}
}

func TestOpKindString(t *testing.T) {
	if OpRemove.String() != "REMOVE" || OpGenerate.String() != "GENERATE" {
		t.Fatal("operator names do not match the paper")
	}
}

var _ = math.Abs
