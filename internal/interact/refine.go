package interact

import (
	"fmt"

	"grouptravel/internal/consensus"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/vec"
)

// refineVector applies the §3.3 update to one category vector:
//
//	g ← g + g⁺ − g⁻,  g⁺ = (1/|I⁺|) Σ_{i∈I⁺} ®i,  g⁻ likewise,
//
// then clamps: components below 0 are set to 0 (the paper's rule) and
// components above 1 are capped at 1 (profiles are [0,1] vectors by
// definition in §2.2; the paper leaves the upper end implicit).
func refineVector(g vec.Vector, added, removed []*poi.POI) vec.Vector {
	out := g.Clone()
	if len(added) > 0 {
		plus := vec.New(len(g))
		for _, p := range added {
			plus = vec.Add(plus, p.Vector)
		}
		out = vec.Add(out, plus.Scale(1/float64(len(added))))
	}
	if len(removed) > 0 {
		minus := vec.New(len(g))
		for _, p := range removed {
			minus = vec.Add(minus, p.Vector)
		}
		out = vec.Sub(out, minus.Scale(1/float64(len(removed))))
	}
	out.ClampNonNegative()
	for i, x := range out {
		if x > 1 {
			out[i] = 1
		}
	}
	return out
}

// RefineProfile returns a copy of p updated from the added/removed POIs,
// category by category (POIs only influence the vector of their own
// category). This is the core update both strategies share.
func RefineProfile(p *profile.Profile, added, removed []*poi.POI) (*profile.Profile, error) {
	out := p.Clone()
	for _, c := range poi.Categories {
		var a, r []*poi.POI
		for _, it := range added {
			if it.Cat == c {
				a = append(a, it)
			}
		}
		for _, it := range removed {
			if it.Cat == c {
				r = append(r, it)
			}
		}
		if len(a) == 0 && len(r) == 0 {
			continue
		}
		if err := out.SetVector(c, refineVector(p.Vector(c), a, r)); err != nil {
			return nil, fmt.Errorf("interact: refine %s: %w", c, err)
		}
	}
	return out, nil
}

// RefineBatch implements the batch strategy (§3.3): all members'
// interactions are pooled and the group profile is updated directly.
func RefineBatch(groupProfile *profile.Profile, ops []Op) (*profile.Profile, error) {
	added, removed := AddedRemoved(ops)
	return RefineProfile(groupProfile, added, removed)
}

// RefineIndividual implements the individual strategy (§3.3): each
// member's own profile is refined from that member's interactions (members
// who did not interact keep their profile), and the refined member
// profiles are re-aggregated into a new group profile with the consensus
// method. It returns the refined group and the new group profile.
func RefineIndividual(g *profile.Group, method consensus.Method, ops []Op) (*profile.Group, *profile.Profile, error) {
	byMember := OpsByMember(ops)
	refined := make([]*profile.Profile, g.Size())
	for i, m := range g.Members {
		memberOps, interacted := byMember[i]
		if !interacted {
			refined[i] = m.Clone()
			continue
		}
		added, removed := AddedRemoved(memberOps)
		r, err := RefineProfile(m, added, removed)
		if err != nil {
			return nil, nil, err
		}
		refined[i] = r
	}
	for member := range byMember {
		if member < 0 || member >= g.Size() {
			return nil, nil, fmt.Errorf("interact: op by unknown member %d (group size %d)", member, g.Size())
		}
	}
	ng, err := profile.NewGroup(g.Schema(), refined)
	if err != nil {
		return nil, nil, err
	}
	gp, err := consensus.GroupProfile(ng, method)
	if err != nil {
		return nil, nil, err
	}
	return ng, gp, nil
}
