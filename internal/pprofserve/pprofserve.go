// Package pprofserve starts the net/http/pprof endpoints on a side
// listener, so profiling never shares a port (or a handler namespace)
// with the serving API. Both daemons wire it behind a -pprof flag; the
// README's Performance section shows the capture commands.
package pprofserve

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// Start serves the pprof index and profile endpoints on addr in a
// background goroutine. An empty addr is a no-op. Errors from the
// listener are reported through onErr (e.g. log.Fatal or log.Printf);
// the caller decides whether a dead profiler kills the process.
func Start(addr string, onErr func(error)) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			onErr(fmt.Errorf("pprof listener on %s: %w", addr, err))
		}
	}()
}
