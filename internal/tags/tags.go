// Package tags implements the tag substrate of GroupTravel.
//
// In the paper, restaurant and attraction POIs carry free-text tags scraped
// from Foursquare ("japanese sushi", "beer wine bistro", "art gallery museum
// library", ...). LDA over those tags yields the latent topics that become
// the item vectors of restaurants and attractions (§2.2). This package
// provides the vocabulary/corpus plumbing and the curated tag themes that
// the synthetic dataset generator draws from — so the end-to-end pipeline
// (tags → LDA → topic vectors → personalization) exercises exactly the same
// code path as the paper's Foursquare data.
package tags

import (
	"sort"
	"strings"
	"unicode"
)

// Vocabulary is a bidirectional word <-> id mapping. The zero value is
// ready to use.
type Vocabulary struct {
	words []string
	index map[string]int
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int)}
}

// ID returns the id for word, adding it if unseen.
func (v *Vocabulary) ID(word string) int {
	if v.index == nil {
		v.index = make(map[string]int)
	}
	if id, ok := v.index[word]; ok {
		return id
	}
	id := len(v.words)
	v.words = append(v.words, word)
	v.index[word] = id
	return id
}

// Lookup returns the id for word and whether it is known.
func (v *Vocabulary) Lookup(word string) (int, bool) {
	id, ok := v.index[word]
	return id, ok
}

// Word returns the word for id. It panics on an out-of-range id.
func (v *Vocabulary) Word(id int) string { return v.words[id] }

// Len returns the vocabulary size.
func (v *Vocabulary) Len() int { return len(v.words) }

// Words returns a copy of all words in id order.
func (v *Vocabulary) Words() []string {
	out := make([]string, len(v.words))
	copy(out, v.words)
	return out
}

// Tokenize lowercases s and splits it into alphabetic tokens, dropping
// anything shorter than two runes. Foursquare tags arrive as loose strings
// ("luxury suites cognac champagne bar"); this mirrors the minimal cleanup
// the paper's pipeline needs.
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() >= 2 {
			out = append(out, b.String())
		}
		b.Reset()
	}
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Document is a bag of word ids (duplicates allowed — LDA needs counts).
type Document []int

// Corpus is a set of documents over a shared vocabulary.
type Corpus struct {
	Vocab *Vocabulary
	Docs  []Document
}

// NewCorpus returns an empty corpus with a fresh vocabulary.
func NewCorpus() *Corpus {
	return &Corpus{Vocab: NewVocabulary()}
}

// AddText tokenizes raw tag text into a document and appends it,
// returning the document index. Empty documents are still appended so that
// document indices stay aligned with POI indices.
func (c *Corpus) AddText(text string) int {
	toks := Tokenize(text)
	doc := make(Document, 0, len(toks))
	for _, tok := range toks {
		doc = append(doc, c.Vocab.ID(tok))
	}
	c.Docs = append(c.Docs, doc)
	return len(c.Docs) - 1
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.Docs) }

// TokenCount returns the total number of tokens across documents.
func (c *Corpus) TokenCount() int {
	n := 0
	for _, d := range c.Docs {
		n += len(d)
	}
	return n
}

// Theme is a named pool of related tag words — the ground-truth latent
// topic the synthetic generator plants and LDA should recover. The paper's
// examples: "art gallery, museum, library", "garden, park, event hall" for
// attractions; "Japanese, sushi", "beer, wine, bistro" for restaurants.
type Theme struct {
	Name  string
	Words []string
}

// RestaurantThemes are the ground-truth restaurant cuisine/ambiance themes.
// The first words of each theme match the paper's own examples.
var RestaurantThemes = []Theme{
	{Name: "japanese", Words: []string{"japanese", "sushi", "ramen", "sake", "tempura", "izakaya", "bento", "wasabi", "miso", "teriyaki"}},
	{Name: "bistro", Words: []string{"beer", "wine", "bistro", "brasserie", "terrace", "cozy", "casual", "tapas", "cheese", "charcuterie"}},
	{Name: "french", Words: []string{"french", "gastronomic", "michelin", "foiegras", "escargot", "souffle", "confit", "sommelier", "degustation", "truffle"}},
	{Name: "cafe", Words: []string{"cafe", "coffee", "brunch", "croissant", "pastry", "espresso", "bakery", "breakfast", "tea", "crepes"}},
	{Name: "streetfood", Words: []string{"kebab", "falafel", "burger", "fries", "pizza", "takeaway", "cheap", "quick", "sandwich", "noodles"}},
	{Name: "vegetarian", Words: []string{"vegetarian", "vegan", "organic", "salad", "healthy", "juice", "glutenfree", "bowl", "smoothie", "plantbased"}},
}

// AttractionThemes are the ground-truth attraction themes.
var AttractionThemes = []Theme{
	{Name: "museum", Words: []string{"art", "gallery", "museum", "library", "exhibition", "contemporary", "sculpture", "painting", "decorative", "heritage"}},
	{Name: "park", Words: []string{"garden", "park", "eventhall", "green", "picnic", "fountain", "lawn", "botanical", "playground", "pond"}},
	{Name: "monument", Words: []string{"monument", "cathedral", "church", "tower", "palace", "historic", "architecture", "landmark", "basilica", "arch"}},
	{Name: "nightlife", Words: []string{"club", "bar", "cabaret", "concert", "music", "dance", "show", "theatre", "jazz", "nightlife"}},
	{Name: "shopping", Words: []string{"shopping", "boutique", "market", "fashion", "souvenir", "antiques", "mall", "designer", "flea", "vintage"}},
	{Name: "river", Words: []string{"river", "cruise", "bridge", "quay", "boat", "waterfront", "island", "seine", "embankment", "panorama"}},
}

// AccommodationTypes are the well-defined accommodation POI types (§2.2:
// "Hotel, Hostel, Resort for accommodation"; the Foursquare augmentation
// also yields motels and residence halls).
var AccommodationTypes = []string{"hotel", "hostel", "motel", "resort", "apartment", "guesthouse", "residencehall", "campsite"}

// TransportationTypes are the well-defined transportation POI types (§2.2:
// tram/train stations, car rental, bike rental, ...).
var TransportationTypes = []string{"tramstation", "trainstation", "metrostation", "busstation", "carrental", "bikerental", "taxistand", "ferrydock"}

// ThemeWords flattens the given themes into a single deduplicated,
// sorted word list (useful to bound LDA vocabularies in tests).
func ThemeWords(themes []Theme) []string {
	set := make(map[string]bool)
	for _, th := range themes {
		for _, w := range th.Words {
			set[w] = true
		}
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// ThemeIndex returns the index of the theme whose word set best covers the
// tokens, with the fraction of tokens covered. Used in tests to check LDA
// topic recovery against the planted themes.
func ThemeIndex(themes []Theme, tokens []string) (int, float64) {
	best, bestCover := -1, -1.0
	for ti, th := range themes {
		set := make(map[string]bool, len(th.Words))
		for _, w := range th.Words {
			set[w] = true
		}
		hit := 0
		for _, tok := range tokens {
			if set[tok] {
				hit++
			}
		}
		cover := 0.0
		if len(tokens) > 0 {
			cover = float64(hit) / float64(len(tokens))
		}
		if cover > bestCover {
			best, bestCover = ti, cover
		}
	}
	return best, bestCover
}
