package tags

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"luxury suites cognac", []string{"luxury", "suites", "cognac"}},
		{"Beer, Wine & Bistro!", []string{"beer", "wine", "bistro"}},
		{"a b cd", []string{"cd"}}, // single-rune tokens dropped
		{"", nil},
		{"   ", nil},
		{"café-crème", []string{"café", "crème"}}, // unicode letters kept
		{"fixed gear 123", []string{"fixed", "gear"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVocabularyRoundTrip(t *testing.T) {
	v := NewVocabulary()
	id1 := v.ID("museum")
	id2 := v.ID("garden")
	id3 := v.ID("museum") // repeated word keeps its id
	if id1 != id3 {
		t.Fatalf("repeated word changed id: %d vs %d", id1, id3)
	}
	if id1 == id2 {
		t.Fatal("distinct words share an id")
	}
	if v.Word(id1) != "museum" || v.Word(id2) != "garden" {
		t.Fatal("Word() does not invert ID()")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if got, ok := v.Lookup("garden"); !ok || got != id2 {
		t.Fatalf("Lookup(garden) = %d,%v", got, ok)
	}
	if _, ok := v.Lookup("unseen"); ok {
		t.Fatal("Lookup found unseen word")
	}
}

func TestVocabularyZeroValue(t *testing.T) {
	var v Vocabulary
	if id := v.ID("x"); id != 0 {
		t.Fatalf("zero-value vocabulary first id = %d", id)
	}
}

func TestCorpusAlignment(t *testing.T) {
	c := NewCorpus()
	i0 := c.AddText("sushi ramen")
	i1 := c.AddText("") // empty docs keep indices aligned with POIs
	i2 := c.AddText("wine bistro wine")
	if i0 != 0 || i1 != 1 || i2 != 2 {
		t.Fatalf("indices = %d,%d,%d", i0, i1, i2)
	}
	if len(c.Docs[1]) != 0 {
		t.Fatal("empty text produced a non-empty document")
	}
	if len(c.Docs[2]) != 3 {
		t.Fatalf("duplicates dropped: doc = %v", c.Docs[2])
	}
	if c.TokenCount() != 5 {
		t.Fatalf("TokenCount = %d, want 5", c.TokenCount())
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCorpusSharedVocabulary(t *testing.T) {
	c := NewCorpus()
	c.AddText("wine cheese")
	c.AddText("cheese bread")
	// "cheese" appears in both docs with the same id.
	if c.Docs[0][1] != c.Docs[1][0] {
		t.Fatal("shared word has different ids across documents")
	}
	if c.Vocab.Len() != 3 {
		t.Fatalf("vocab size = %d, want 3", c.Vocab.Len())
	}
}

func TestThemesNonOverlappingEnough(t *testing.T) {
	// Each theme must be distinguishable: no word may appear in more than
	// two themes of the same category, otherwise LDA recovery is ambiguous.
	check := func(themes []Theme, label string) {
		count := make(map[string]int)
		for _, th := range themes {
			for _, w := range th.Words {
				count[w]++
			}
		}
		for w, n := range count {
			if n > 2 {
				t.Errorf("%s: word %q appears in %d themes", label, w, n)
			}
		}
	}
	check(RestaurantThemes, "restaurants")
	check(AttractionThemes, "attractions")
}

func TestThemeWordsSortedUnique(t *testing.T) {
	ws := ThemeWords(RestaurantThemes)
	for i := 1; i < len(ws); i++ {
		if ws[i-1] >= ws[i] {
			t.Fatalf("ThemeWords not strictly sorted at %d: %q >= %q", i, ws[i-1], ws[i])
		}
	}
}

func TestThemeIndex(t *testing.T) {
	idx, cover := ThemeIndex(RestaurantThemes, []string{"sushi", "ramen", "sake"})
	if RestaurantThemes[idx].Name != "japanese" {
		t.Fatalf("ThemeIndex picked %q for sushi tokens", RestaurantThemes[idx].Name)
	}
	if cover != 1.0 {
		t.Fatalf("cover = %v, want 1.0", cover)
	}
	idx, _ = ThemeIndex(AttractionThemes, []string{"garden", "park", "fountain"})
	if AttractionThemes[idx].Name != "park" {
		t.Fatalf("ThemeIndex picked %q for park tokens", AttractionThemes[idx].Name)
	}
}

func TestThemeIndexEmptyTokens(t *testing.T) {
	idx, cover := ThemeIndex(RestaurantThemes, nil)
	if idx < 0 || cover != 0 {
		t.Fatalf("empty tokens: idx=%d cover=%v", idx, cover)
	}
}

func TestTokenizePropertyQuick(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if len(tok) < 2 {
				return false
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					return false // must be lowercased
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeListsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, lst := range [][]string{AccommodationTypes, TransportationTypes} {
		for _, ty := range lst {
			if seen[ty] {
				t.Fatalf("duplicate POI type %q", ty)
			}
			seen[ty] = true
		}
	}
}
