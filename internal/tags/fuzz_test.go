package tags

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize exercises the tokenizer with arbitrary byte sequences —
// POI tags arrive from external data (Foursquare text, TourPedia reviews)
// and must never panic or emit malformed tokens.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"luxury suites cognac champagne bar",
		"Beer, Wine & Bistro!",
		"café-crème über straße",
		"日本語 sushi ラーメン",
		"", "   ", "a", "NUL and friends", "🎡🎢 park",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if len(tok) < 2 {
				t.Fatalf("token %q shorter than 2 runes", tok)
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) {
					t.Fatalf("token %q contains non-letter %q", tok, r)
				}
			}
			// Lowercasing is idempotent (some letters, e.g. U+03D4, have
			// no lowercase form at all — they pass through unchanged).
			if strings.ToLower(tok) != tok {
				t.Fatalf("token %q not case-normalized", tok)
			}
		}
		// Tokenizing twice is stable.
		again := Tokenize(s)
		if len(again) != len(toks) {
			t.Fatal("tokenizer not deterministic")
		}
	})
}
