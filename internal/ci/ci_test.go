package ci

import (
	"math"
	"testing"

	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
	"grouptravel/internal/vec"
)

func testCity(t *testing.T) *dataset.City {
	t.Helper()
	c, err := dataset.Generate(dataset.TestSpec("CITest", 99))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func builderFor(t *testing.T, city *dataset.City, q query.Query, grp *profile.Profile, beta, gamma float64) *Builder {
	t.Helper()
	return &Builder{
		Coll:  city.POIs,
		Query: q,
		Group: grp,
		Beta:  beta,
		Gamma: gamma,
		Norm:  city.POIs.Normalizer(),
	}
}

func TestBuildValidCI(t *testing.T) {
	city := testCity(t)
	b := builderFor(t, city, query.Default(), nil, 1, 0)
	mu := dataset.BuiltinCenters["Paris"]
	c, err := b.Build(mu, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := b.Query.CheckCI(c.Items); err != nil {
		t.Fatalf("built CI invalid: %v", err)
	}
	if len(c.Items) != b.Query.Size() {
		t.Fatalf("CI has %d items, want %d", len(c.Items), b.Query.Size())
	}
}

func TestBuildPicksNearbyWhenGeographic(t *testing.T) {
	// With β=1, γ=0, the built CI must be (weakly) closer to the centroid
	// than a random valid CI.
	city := testCity(t)
	b := builderFor(t, city, query.Default(), nil, 1, 0)
	mu := city.POIs.All()[0].Coord
	c, err := b.Build(mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	meanDist := func(items []*poi.POI) float64 {
		s := 0.0
		for _, it := range items {
			s += geo.Equirectangular(it.Coord, mu)
		}
		return s / float64(len(items))
	}
	// Reference: centroid-agnostic pick (first #c per category).
	var ref []*poi.POI
	for _, cat := range poi.Categories {
		ref = append(ref, city.POIs.ByCategory(cat)[:b.Query.Counts[cat]]...)
	}
	if meanDist(c.Items) > meanDist(ref) {
		t.Fatalf("geographic build (%v km) no closer than arbitrary pick (%v km)",
			meanDist(c.Items), meanDist(ref))
	}
}

func TestBuildPersonalizationChangesSelection(t *testing.T) {
	city := testCity(t)
	src := rng.New(5)
	grp := profile.GenerateRandomProfile(city.Schema, src)
	mu := dataset.BuiltinCenters["Paris"]

	plain := builderFor(t, city, query.Default(), nil, 1, 0)
	pers := builderFor(t, city, query.Default(), grp, 0.1, 1)
	c1, err := plain.Build(mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pers.Build(mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The personalized CI must score higher under the group profile.
	cosSum := func(c *CI) float64 {
		s := 0.0
		for _, it := range c.Items {
			s += vec.Cosine(it.Vector, grp.Vector(it.Cat))
		}
		return s
	}
	if cosSum(c2) < cosSum(c1) {
		t.Fatalf("personalized CI cosine %v below plain %v", cosSum(c2), cosSum(c1))
	}
}

func TestBuildRespectsExclude(t *testing.T) {
	city := testCity(t)
	b := builderFor(t, city, query.Default(), nil, 1, 0)
	mu := dataset.BuiltinCenters["Paris"]
	first, err := b.Build(mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	exclude := map[int]bool{}
	for _, it := range first.Items {
		exclude[it.ID] = true
	}
	second, err := b.Build(mu, exclude)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range second.Items {
		if exclude[it.ID] {
			t.Fatalf("excluded POI %d reused", it.ID)
		}
	}
}

func TestBuildBudgetRepair(t *testing.T) {
	city := testCity(t)
	// Find a budget between the cheapest possible CI and the unconstrained
	// greedy's cost, forcing repair to run and succeed.
	unconstrained := builderFor(t, city, query.Default(), nil, 1, 0)
	mu := dataset.BuiltinCenters["Paris"]
	c, err := unconstrained.Build(mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedyCost := c.Cost()

	q := query.MustNew(1, 1, 1, 3, greedyCost*0.75)
	b := builderFor(t, city, q, nil, 1, 0)
	repaired, err := b.Build(mu, nil)
	if err != nil {
		t.Fatalf("budget repair failed: %v", err)
	}
	if repaired.Cost() > q.Budget {
		t.Fatalf("repaired CI costs %v over budget %v", repaired.Cost(), q.Budget)
	}
	if err := q.CheckCI(repaired.Items); err != nil {
		t.Fatalf("repaired CI invalid: %v", err)
	}
}

func TestBuildImpossibleBudget(t *testing.T) {
	city := testCity(t)
	q := query.MustNew(1, 1, 1, 3, 1e-9)
	b := builderFor(t, city, q, nil, 1, 0)
	if _, err := b.Build(dataset.BuiltinCenters["Paris"], nil); err == nil {
		t.Fatal("impossible budget accepted")
	}
}

func TestBuildInfeasibleCounts(t *testing.T) {
	city := testCity(t)
	q := query.MustNew(1, 1, 1, 10000, math.Inf(1))
	b := builderFor(t, city, q, nil, 1, 0)
	if _, err := b.Build(dataset.BuiltinCenters["Paris"], nil); err == nil {
		t.Fatal("infeasible counts accepted")
	}
}

func TestBuildExcludeCanMakeInfeasible(t *testing.T) {
	city := testCity(t)
	b := builderFor(t, city, query.Default(), nil, 1, 0)
	exclude := map[int]bool{}
	for _, it := range city.POIs.ByCategory(poi.Acco) {
		exclude[it.ID] = true
	}
	if _, err := b.Build(dataset.BuiltinCenters["Paris"], exclude); err == nil {
		t.Fatal("build succeeded with every accommodation excluded")
	}
}

func TestBuilderValidate(t *testing.T) {
	city := testCity(t)
	bad := []*Builder{
		{Coll: nil, Query: query.Default()},
		{Coll: city.POIs, Query: query.Query{}},
		{Coll: city.POIs, Query: query.Default(), Beta: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad builder %d accepted", i)
		}
	}
}

func TestCIHelpers(t *testing.T) {
	city := testCity(t)
	b := builderFor(t, city, query.Default(), nil, 1, 0)
	c, err := b.Build(dataset.BuiltinCenters["Paris"], nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost() <= 0 {
		t.Fatalf("Cost = %v", c.Cost())
	}
	if c.PairwiseDistanceSum() < 0 {
		t.Fatal("negative pairwise distance sum")
	}
	if !c.Contains(c.Items[0].ID) || c.Contains(-12345) {
		t.Fatal("Contains wrong")
	}
	center := c.Center()
	if !city.POIs.Bounds().Contains(center) {
		t.Fatalf("CI center %v outside city bounds", center)
	}
	// Clone is independent at the slice level.
	cl := c.Clone()
	cl.Items[0] = nil
	if c.Items[0] == nil {
		t.Fatal("Clone shares item slice")
	}
	// Empty CI center falls back to the stored centroid.
	empty := &CI{Centroid: geo.Point{Lat: 1, Lon: 2}}
	if empty.Center() != (geo.Point{Lat: 1, Lon: 2}) {
		t.Fatal("empty CI center wrong")
	}
}

func TestObjectiveValueMatchesScoreSum(t *testing.T) {
	city := testCity(t)
	src := rng.New(7)
	grp := profile.GenerateRandomProfile(city.Schema, src)
	b := builderFor(t, city, query.Default(), grp, 0.7, 0.9)
	c, err := b.Build(dataset.BuiltinCenters["Paris"], nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, it := range c.Items {
		want += b.Score(it, c.Centroid)
	}
	if got := b.ObjectiveValue(c); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ObjectiveValue = %v, want %v", got, want)
	}
}

func TestBuildIsGreedyOptimalPerCategoryUnbounded(t *testing.T) {
	// With an unlimited budget the construction must pick, per category,
	// exactly the top-scoring #c items — verify against brute force.
	city := testCity(t)
	b := builderFor(t, city, query.Default(), nil, 1, 0)
	mu := city.POIs.All()[10].Coord
	c, err := b.Build(mu, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range poi.Categories {
		want := b.Query.Counts[cat]
		if want == 0 {
			continue
		}
		// Best score among unpicked items must not beat the worst picked.
		worstPicked := math.Inf(1)
		picked := map[int]bool{}
		for _, it := range c.Items {
			if it.Cat != cat {
				continue
			}
			picked[it.ID] = true
			if s := b.Score(it, mu); s < worstPicked {
				worstPicked = s
			}
		}
		for _, it := range city.POIs.ByCategory(cat) {
			if picked[it.ID] {
				continue
			}
			if s := b.Score(it, mu); s > worstPicked+1e-12 {
				t.Fatalf("%s: unpicked item %d scores %v above worst picked %v",
					cat, it.ID, s, worstPicked)
			}
		}
	}
}
