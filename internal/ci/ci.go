// Package ci implements Composite Items (§3.1–3.2): sets of POIs of
// prescribed categories under a budget, and the construction of the best
// valid CI in the vicinity of a fuzzy-clustering centroid — the inner
//
//	max_{CI_j ∈ V} ( β Σ_{i∈CI_j} (1 − d(i, μ_j)) + γ Σ_{i∈CI_j} cos(®i, ®g) )
//
// term of the paper's objective (Eq. 1).
package ci

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"grouptravel/internal/geo"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/vec"
)

// CI is a Composite Item: a set of POIs plus the centroid it was built
// around. Items are ordered by category then descending score, which is
// also a stable presentation order for UIs (Fig. 1 shows CIs as day plans).
type CI struct {
	Items    []*poi.POI
	Centroid geo.Point
}

// Cost returns the total cost of the CI's items (the budget side of the
// §3.1 validity predicate).
func (c *CI) Cost() float64 {
	total := 0.0
	for _, it := range c.Items {
		total += it.Cost
	}
	return total
}

// Center returns the mean coordinate of the CI's items, or the stored
// centroid for an empty CI. Core uses this to re-anchor centroids between
// refinement rounds.
func (c *CI) Center() geo.Point {
	if len(c.Items) == 0 {
		return c.Centroid
	}
	pts := make([]geo.Point, len(c.Items))
	for i, it := range c.Items {
		pts[i] = it.Coord
	}
	return geo.Centroid(pts, nil)
}

// PairwiseDistanceSum returns Σ_{i,j∈CI} d(i,j) over unordered pairs in km
// — the inner sum of the cohesiveness measure (Eq. 3).
func (c *CI) PairwiseDistanceSum() float64 {
	sum := 0.0
	for i := 0; i < len(c.Items); i++ {
		for j := i + 1; j < len(c.Items); j++ {
			sum += geo.Equirectangular(c.Items[i].Coord, c.Items[j].Coord)
		}
	}
	return sum
}

// Contains reports whether the CI holds the POI with the given id.
func (c *CI) Contains(id int) bool {
	for _, it := range c.Items {
		if it.ID == id {
			return true
		}
	}
	return false
}

// Clone returns a shallow copy of the CI (POIs are shared, immutable data).
func (c *CI) Clone() *CI {
	items := make([]*poi.POI, len(c.Items))
	copy(items, c.Items)
	return &CI{Items: items, Centroid: c.Centroid}
}

// Builder constructs the best valid CI near a centroid. One Builder is
// reusable across centroids and refinement rounds.
//
// A Builder is an immutable configuration: none of its fields are written
// after construction, and every Build call keeps its working state (the
// per-category rankings, the current selection, the budget-repair
// bookkeeping) in a per-call buildState. One Builder therefore serves any
// number of goroutines concurrently, provided the caller does not mutate
// its fields or the exclude sets it passes while builds are in flight —
// core.Engine relies on this to construct a package's CIs in parallel.
type Builder struct {
	Coll  *poi.Collection
	Query query.Query
	// Group is the group profile ®g; nil builds non-personalized CIs
	// (equivalent to γ = 0).
	Group *profile.Profile
	// Beta and Gamma weigh centroid proximity and personalization in the
	// per-item score β(1−d(i,μ)) + γ·cos(®i, ®g) (Eq. 1).
	Beta  float64
	Gamma float64
	// Norm converts km distances to the normalized [0,1] distances of
	// Eq. 1; use Coll.Normalizer() unless experimenting.
	Norm geo.Normalizer
}

// Validate checks the builder configuration.
func (b *Builder) Validate() error {
	if b.Coll == nil {
		return fmt.Errorf("ci: nil collection")
	}
	if err := b.Query.Validate(); err != nil {
		return err
	}
	if b.Beta < 0 || b.Gamma < 0 {
		return fmt.Errorf("ci: negative objective weights (beta=%v gamma=%v)", b.Beta, b.Gamma)
	}
	return b.Query.Feasible(b.Coll)
}

// Score returns the per-item objective contribution for an item relative
// to centroid mu: β(1−d(i,μ)) + γ·cos(®i, ®g_cat).
func (b *Builder) Score(it *poi.POI, mu geo.Point) float64 {
	s := b.Beta * (1 - b.Norm.Distance(it.Coord, mu))
	if b.Group != nil && b.Gamma > 0 {
		s += b.Gamma * vec.Cosine(it.Vector, b.Group.Vector(it.Cat))
	}
	return s
}

// scored pairs a candidate with its score for one centroid.
type scored struct {
	item  *poi.POI
	score float64
}

// buildState is the per-call scratch of one Build: candidate rankings, the
// current selection and the budget-repair bookkeeping. Keeping all mutable
// state here (never on the Builder) is what makes one Builder safe to share
// across goroutines.
type buildState struct {
	b        *Builder
	perCat   [poi.NumCategories][]scored
	selected []scored
	selIdx   map[int]int // POI id -> index in its category ranking
}

// statePool recycles buildStates across Build calls. The per-category
// rankings dominated the build path's allocations (a fresh slice per
// category per centroid per refinement round); reusing the backing arrays
// makes steady-state builds allocation-free outside the returned CI.
var statePool = sync.Pool{New: func() any { return new(buildState) }}

func getBuildState(b *Builder) *buildState {
	st := statePool.Get().(*buildState)
	st.b = b
	for i := range st.perCat {
		st.perCat[i] = st.perCat[i][:0]
	}
	st.selected = st.selected[:0]
	if st.selIdx == nil {
		st.selIdx = make(map[int]int)
	} else {
		clear(st.selIdx)
	}
	return st
}

func putBuildState(st *buildState) {
	st.b = nil
	for i := range st.perCat {
		// Drop POI pointers so a pooled state does not pin a collection.
		s := st.perCat[i]
		for j := range s {
			s[j] = scored{}
		}
		st.perCat[i] = s[:0]
	}
	for j := range st.selected {
		st.selected[j] = scored{}
	}
	st.selected = st.selected[:0]
	statePool.Put(st)
}

// Build constructs the best valid CI around mu. exclude (may be nil) lists
// POI ids that must not be used — the REMOVE customization operator and
// "generate a new CI avoiding current items" both need it.
//
// Algorithm: per category, rank candidates by score and take the top
// #c_j; if the budget is exceeded, run a swap-repair local search that
// replaces expensive picks with cheaper candidates at minimal score loss.
// Returns an error if no valid CI exists (infeasible counts or budget).
//
// Build is safe to call from multiple goroutines on one Builder; all
// working state lives in a per-call buildState.
func (b *Builder) Build(mu geo.Point, exclude map[int]bool) (*CI, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	st := getBuildState(b)
	defer putBuildState(st)
	if err := st.rank(mu, exclude); err != nil {
		return nil, err
	}
	st.selectTop()
	if !b.Query.Unbounded() {
		if err := st.repairBudget(); err != nil {
			return nil, err
		}
	}
	items := make([]*poi.POI, len(st.selected))
	for i, s := range st.selected {
		items[i] = s.item
	}
	out := &CI{Items: items, Centroid: mu}
	if err := b.Query.CheckCI(out.Items); err != nil {
		return nil, fmt.Errorf("ci: construction produced invalid CI: %w", err)
	}
	return out, nil
}

// rank scores and orders the candidates of every requested category.
//
// The scoring loop is the hottest code in a build: it hoists the group
// vector and its norm out of the per-candidate loop (vec.CosineNormB) and
// sorts with slices.SortFunc on the concrete slice — the reflection-based
// sort.Slice swapper alone used to account for a quarter of the build
// path's allocations. The comparator is a strict total order (score
// descending, POI id ascending), so the unstable pdqsort yields the same
// deterministic ranking the previous stable-by-accident ordering did.
func (st *buildState) rank(mu geo.Point, exclude map[int]bool) error {
	b := st.b
	personalize := b.Group != nil && b.Gamma > 0
	for _, cat := range poi.Categories {
		want := b.Query.Counts[cat]
		if want == 0 {
			continue
		}
		cands := b.Coll.ByCategory(cat)
		list := st.perCat[cat][:0]
		if cap(list) < len(cands) {
			list = make([]scored, 0, len(cands))
		}
		var gv vec.Vector
		var gn float64
		if personalize {
			gv = b.Group.Vector(cat)
			gn = gv.Norm()
		}
		for _, it := range cands {
			if exclude != nil && exclude[it.ID] {
				continue
			}
			// Same arithmetic as Builder.Score, with the group-vector
			// norm computed once per category instead of once per item.
			s := b.Beta * (1 - b.Norm.Distance(it.Coord, mu))
			if personalize {
				s += b.Gamma * vec.CosineNormB(it.Vector, gv, gn)
			}
			list = append(list, scored{it, s})
		}
		if len(list) < want {
			st.perCat[cat] = list
			return fmt.Errorf("ci: only %d available %s POIs, query wants %d",
				len(list), cat, want)
		}
		slices.SortFunc(list, func(a, b scored) int {
			switch {
			case a.score > b.score:
				return -1
			case a.score < b.score:
				return 1
			case a.item.ID < b.item.ID:
				return -1
			case a.item.ID > b.item.ID:
				return 1
			}
			return 0
		})
		st.perCat[cat] = list
	}
	return nil
}

// selectTop takes the greedy top-k of each category's ranking.
func (st *buildState) selectTop() {
	b := st.b
	if need := b.Query.Size(); cap(st.selected) < need {
		st.selected = make([]scored, 0, need)
	}
	for _, cat := range poi.Categories {
		for i := 0; i < b.Query.Counts[cat]; i++ {
			s := st.perCat[cat][i]
			st.selected = append(st.selected, s)
			st.selIdx[s.item.ID] = i
		}
	}
}

// repairBudget swaps selected items for cheaper same-category candidates
// until the budget holds, minimizing score loss per unit of cost saved.
func (st *buildState) repairBudget() error {
	b := st.b
	cost := 0.0
	for _, s := range st.selected {
		cost += s.item.Cost
	}
	for cost > b.Query.Budget {
		bestSel, bestCand := -1, -1
		bestRatio := 0.0
		for si, s := range st.selected {
			cat := s.item.Cat
			for ci, cand := range st.perCat[cat] {
				if _, taken := st.selIdx[cand.item.ID]; taken {
					continue
				}
				saving := s.item.Cost - cand.item.Cost
				if saving <= 0 {
					continue
				}
				loss := s.score - cand.score // >= 0: candidates rank below
				ratio := loss / saving
				if bestSel == -1 || ratio < bestRatio {
					bestSel, bestCand, bestRatio = si, ci, ratio
				}
			}
		}
		if bestSel == -1 {
			return fmt.Errorf("ci: no valid CI within budget %.3f (cheapest selection costs %.3f)",
				b.Query.Budget, st.cheapestCost())
		}
		old := st.selected[bestSel]
		neu := st.perCat[old.item.Cat][bestCand]
		delete(st.selIdx, old.item.ID)
		st.selIdx[neu.item.ID] = bestCand
		cost += neu.item.Cost - old.item.Cost
		st.selected[bestSel] = neu
	}
	return nil
}

// cheapestCost returns the minimum achievable CI cost — used only for the
// infeasibility error message.
func (st *buildState) cheapestCost() float64 {
	b := st.b
	total := 0.0
	for _, cat := range poi.Categories {
		want := b.Query.Counts[cat]
		if want == 0 {
			continue
		}
		costs := make([]float64, len(st.perCat[cat]))
		for i, s := range st.perCat[cat] {
			costs[i] = s.item.Cost
		}
		sort.Float64s(costs)
		for i := 0; i < want && i < len(costs); i++ {
			total += costs[i]
		}
	}
	return total
}

// ObjectiveValue returns the CI's contribution to the second line of Eq. 1:
// β Σ (1−d(i,μ)) + γ Σ cos(®i, ®g), using the builder's weights.
func (b *Builder) ObjectiveValue(c *CI) float64 {
	total := 0.0
	for _, it := range c.Items {
		total += b.Score(it, c.Centroid)
	}
	return total
}
