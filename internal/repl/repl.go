// Package repl drives an interactive customization session from a text
// stream — the terminal counterpart of the paper's Figure 3 map GUI. It is
// factored out of the CLI so the command loop is unit-testable with plain
// readers and writers.
//
// Commands:
//
//	show                         print the package (Fig. 1 layout)
//	map                          print the ASCII city map
//	remove <ci> <poi>            REMOVE(poi, CI)
//	candidates <ci> <cat> [type] list ADD candidates near the CI
//	add <ci> <poi>               ADD(poi, CI)
//	replace <ci> <poi>           REPLACE(poi, CI) — system recommends
//	generate <lat> <lon> <w> <h> GENERATE(RECTANGLE(...))
//	delete <ci>                  delete a whole CI (iterated REMOVE)
//	refine [batch|individual]    refine the profile and rebuild
//	help                         this list
//	quit                         end the session
//
// CI indices are 1-based in the REPL (matching the DAY numbering shown by
// `show`); the member performing operations is fixed per session.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/render"
)

// REPL is an interactive customization loop.
type REPL struct {
	city    *dataset.City
	engine  *core.Engine
	group   *profile.Group
	method  consensus.Method
	member  int
	session *interact.Session
	gp      *profile.Profile
}

// New prepares a REPL over a freshly built package.
func New(city *dataset.City, engine *core.Engine, group *profile.Group, method consensus.Method, member int, tp *core.TravelPackage) (*REPL, error) {
	if member < 0 || member >= group.Size() {
		return nil, fmt.Errorf("repl: member %d outside group of %d", member, group.Size())
	}
	sess, err := interact.NewSession(city, tp)
	if err != nil {
		return nil, err
	}
	return &REPL{
		city: city, engine: engine, group: group, method: method,
		member: member, session: sess, gp: tp.Group,
	}, nil
}

// Session exposes the underlying session (for tests and for saving the
// result).
func (r *REPL) Session() *interact.Session { return r.session }

// Run processes commands from in, writing responses to out, until EOF or
// "quit". Command errors are reported to out and the loop continues; only
// I/O failures abort.
func (r *REPL) Run(in io.Reader, out io.Writer) error {
	scanner := bufio.NewScanner(in)
	fmt.Fprintf(out, "customizing a %d-CI package in %s — type 'help' for commands\n",
		len(r.session.Package().CIs), r.city.Name)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd := strings.ToLower(fields[0])
		if cmd == "quit" || cmd == "exit" {
			fmt.Fprintln(out, "bye")
			return nil
		}
		if err := r.dispatch(cmd, fields[1:], out); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
	return scanner.Err()
}

func (r *REPL) dispatch(cmd string, args []string, out io.Writer) error {
	switch cmd {
	case "help":
		fmt.Fprintln(out, "commands: show | map | history | remove <ci> <poi> | candidates <ci> <cat> [type] | add <ci> <poi> | replace <ci> <poi> | generate <lat> <lon> <w> <h> | delete <ci> | refine [batch|individual] | quit")
		return nil
	case "history":
		ops := r.session.Log()
		if len(ops) == 0 {
			fmt.Fprintln(out, "no interactions yet")
			return nil
		}
		for i, op := range ops {
			detail := ""
			for _, p := range op.Removed {
				detail += fmt.Sprintf(" -%s(%d)", p.Name, p.ID)
			}
			for _, p := range op.Added {
				detail += fmt.Sprintf(" +%s(%d)", p.Name, p.ID)
			}
			fmt.Fprintf(out, "%3d. member %d %s day %d%s\n", i+1, op.Member, op.Kind, op.CIIndex+1, detail)
		}
		return nil
	case "show":
		fmt.Fprint(out, render.Package(r.session.Package()))
		return nil
	case "map":
		fmt.Fprint(out, render.Map(r.session.Package(), r.city.POIs.Bounds(), r.city.POIs.All(), 72))
		return nil
	case "remove":
		ciIdx, poiID, err := ciPoiArgs(args)
		if err != nil {
			return err
		}
		if err := r.session.Remove(r.member, ciIdx, poiID); err != nil {
			return err
		}
		fmt.Fprintf(out, "removed POI %d from day %d\n", poiID, ciIdx+1)
		return nil
	case "candidates":
		if len(args) < 2 {
			return fmt.Errorf("usage: candidates <ci> <cat> [type]")
		}
		ciIdx, err := dayArg(args[0])
		if err != nil {
			return err
		}
		cat, err := poi.ParseCategory(args[1])
		if err != nil {
			return err
		}
		typeFilter := ""
		if len(args) > 2 {
			typeFilter = args[2]
		}
		cands, err := r.session.AddCandidates(ciIdx, cat, typeFilter, 8)
		if err != nil {
			return err
		}
		if len(cands) == 0 {
			fmt.Fprintln(out, "no candidates")
			return nil
		}
		for _, c := range cands {
			fmt.Fprintf(out, "  %5d  %-28s %-12s %s  $%.2f\n", c.ID, c.Name, c.Type, c.Coord, c.Cost)
		}
		return nil
	case "add":
		ciIdx, poiID, err := ciPoiArgs(args)
		if err != nil {
			return err
		}
		if err := r.session.Add(r.member, ciIdx, poiID); err != nil {
			return err
		}
		fmt.Fprintf(out, "added POI %d to day %d\n", poiID, ciIdx+1)
		return nil
	case "replace":
		ciIdx, poiID, err := ciPoiArgs(args)
		if err != nil {
			return err
		}
		neu, err := r.session.Replace(r.member, ciIdx, poiID)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "replaced POI %d with %q (POI %d)\n", poiID, neu.Name, neu.ID)
		return nil
	case "generate":
		if len(args) != 4 {
			return fmt.Errorf("usage: generate <lat> <lon> <width> <height>")
		}
		vals := make([]float64, 4)
		for i, a := range args {
			v, err := strconv.ParseFloat(a, 64)
			if err != nil {
				return fmt.Errorf("bad number %q", a)
			}
			vals[i] = v
		}
		rect, err := geo.NewRect(geo.Point{Lat: vals[0], Lon: vals[1]}, vals[2], vals[3])
		if err != nil {
			return err
		}
		newCI, err := r.session.Generate(r.member, rect)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "generated day %d with %d POIs around %s\n",
			len(r.session.Package().CIs), len(newCI.Items), newCI.Centroid)
		return nil
	case "delete":
		if len(args) != 1 {
			return fmt.Errorf("usage: delete <ci>")
		}
		ciIdx, err := dayArg(args[0])
		if err != nil {
			return err
		}
		if err := r.session.DeleteCI(r.member, ciIdx); err != nil {
			return err
		}
		fmt.Fprintf(out, "deleted day %d\n", ciIdx+1)
		return nil
	case "refine":
		strategy := "batch"
		if len(args) > 0 {
			strategy = strings.ToLower(args[0])
		}
		return r.refine(strategy, out)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

// refine applies the chosen strategy to the session log and rebuilds the
// package in place.
func (r *REPL) refine(strategy string, out io.Writer) error {
	if r.gp == nil {
		return fmt.Errorf("package was not personalized; nothing to refine")
	}
	ops := r.session.Log()
	if len(ops) == 0 {
		return fmt.Errorf("no interactions to refine from")
	}
	var refined *profile.Profile
	var err error
	switch strategy {
	case "batch":
		refined, err = interact.RefineBatch(r.gp, ops)
	case "individual":
		_, refined, err = interact.RefineIndividual(r.group, r.method, ops)
	default:
		return fmt.Errorf("unknown strategy %q (batch|individual)", strategy)
	}
	if err != nil {
		return err
	}
	old := r.session.Package()
	params := old.Params
	if params.K == 0 {
		params = core.DefaultParams(len(old.CIs))
	}
	tp, err := r.engine.Build(refined, old.Query, params)
	if err != nil {
		return err
	}
	sess, err := interact.NewSession(r.city, tp)
	if err != nil {
		return err
	}
	r.session = sess
	r.gp = refined
	fmt.Fprintf(out, "profile refined (%s, %d ops) and package rebuilt — 'show' to inspect\n", strategy, len(ops))
	return nil
}

// ciPoiArgs parses "<ci> <poi>" with 1-based day numbering.
func ciPoiArgs(args []string) (ciIdx, poiID int, err error) {
	if len(args) != 2 {
		return 0, 0, fmt.Errorf("usage: <command> <ci> <poi>")
	}
	ciIdx, err = dayArg(args[0])
	if err != nil {
		return 0, 0, err
	}
	poiID, err = strconv.Atoi(args[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad POI id %q", args[1])
	}
	return ciIdx, poiID, nil
}

// dayArg parses a 1-based day number into a 0-based CI index.
func dayArg(s string) (int, error) {
	d, err := strconv.Atoi(s)
	if err != nil || d < 1 {
		return 0, fmt.Errorf("bad day %q (days are numbered from 1)", s)
	}
	return d - 1, nil
}
