package repl

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
)

var (
	replCity   *dataset.City
	replEngine *core.Engine
)

func newREPL(t *testing.T, seed int64) *REPL {
	t.Helper()
	if replCity == nil {
		c, err := dataset.Generate(dataset.TestSpec("ReplCity", 101))
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		replCity, replEngine = c, e
	}
	g, err := profile.GenerateUniformGroup(replCity.Schema, 3, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	gp, err := consensus.GroupProfile(g, consensus.PairwiseDis)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := replEngine.Build(gp, query.Default(), core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(replCity, replEngine, g, consensus.PairwiseDis, 0, tp)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// run feeds a script and returns the output.
func run(t *testing.T, r *REPL, script string) string {
	t.Helper()
	var out bytes.Buffer
	if err := r.Run(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShowAndHelp(t *testing.T) {
	r := newREPL(t, 1)
	out := run(t, r, "help\nshow\nquit\n")
	for _, want := range []string{"commands:", "DAY 1", "bye"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMapCommand(t *testing.T) {
	r := newREPL(t, 2)
	out := run(t, r, "map\nquit\n")
	if !strings.Contains(out, "legend") {
		t.Fatalf("map output missing legend:\n%s", out)
	}
}

func TestRemoveCommand(t *testing.T) {
	r := newREPL(t, 3)
	target := r.Session().Package().CIs[0].Items[0].ID
	out := run(t, r, fmt.Sprintf("remove 1 %d\nquit\n", target))
	if !strings.Contains(out, fmt.Sprintf("removed POI %d from day 1", target)) {
		t.Fatalf("output:\n%s", out)
	}
	if r.Session().Package().CIs[0].Contains(target) {
		t.Fatal("POI still present")
	}
	if len(r.Session().Log()) != 1 {
		t.Fatal("operation not logged")
	}
}

func TestCandidatesAndAdd(t *testing.T) {
	r := newREPL(t, 4)
	out := run(t, r, "candidates 1 attr\nquit\n")
	if !strings.Contains(out, "$") {
		t.Fatalf("no candidates listed:\n%s", out)
	}
	// Grab the first candidate id straight from the session and add it.
	cands, err := r.Session().AddCandidates(0, poi.Attr, "", 1)
	if err != nil || len(cands) == 0 {
		t.Fatal("no candidates available")
	}
	out = run(t, r, fmt.Sprintf("add 1 %d\nquit\n", cands[0].ID))
	if !strings.Contains(out, "added POI") {
		t.Fatalf("add failed:\n%s", out)
	}
}

func TestReplaceCommand(t *testing.T) {
	r := newREPL(t, 5)
	target := r.Session().Package().CIs[1].Items[0].ID
	out := run(t, r, fmt.Sprintf("replace 2 %d\nquit\n", target))
	if !strings.Contains(out, "replaced POI") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestGenerateAndDelete(t *testing.T) {
	r := newREPL(t, 6)
	b := replCity.POIs.Bounds()
	script := fmt.Sprintf("generate %f %f %f %f\ndelete 4\nquit\n",
		b.Lat-b.Height*0.2, b.Lon+b.Width*0.2, b.Width*0.6, b.Height*0.6)
	out := run(t, r, script)
	if !strings.Contains(out, "generated day 4") {
		t.Fatalf("generate failed:\n%s", out)
	}
	if !strings.Contains(out, "deleted day 4") {
		t.Fatalf("delete failed:\n%s", out)
	}
	if len(r.Session().Package().CIs) != 3 {
		t.Fatalf("package has %d CIs after generate+delete", len(r.Session().Package().CIs))
	}
}

func TestRefineCommand(t *testing.T) {
	r := newREPL(t, 7)
	target := r.Session().Package().CIs[0].Items[0].ID
	out := run(t, r, fmt.Sprintf("remove 1 %d\nrefine batch\nshow\nquit\n", target))
	if !strings.Contains(out, "profile refined (batch, 1 ops)") {
		t.Fatalf("refine failed:\n%s", out)
	}
	// After the rebuild the session is fresh.
	if len(r.Session().Log()) != 0 {
		t.Fatal("rebuilt session carries the old log")
	}
	// Refine with nothing to refine from errors politely.
	out = run(t, r, "refine\nquit\n")
	if !strings.Contains(out, "no interactions") {
		t.Fatalf("expected polite error:\n%s", out)
	}
}

func TestErrorHandlingKeepsLoopAlive(t *testing.T) {
	r := newREPL(t, 8)
	out := run(t, r, "remove 99 1\nfly me to the moon\nremove one two\nshow\nquit\n")
	if strings.Count(out, "error:") != 3 {
		t.Fatalf("expected 3 command errors:\n%s", out)
	}
	if !strings.Contains(out, "DAY 1") {
		t.Fatal("loop died after errors")
	}
}

func TestEOFEndsLoop(t *testing.T) {
	r := newREPL(t, 9)
	var outBuf bytes.Buffer
	if err := r.Run(strings.NewReader("show\n"), &outBuf); err != nil {
		t.Fatal(err)
	}
}

func TestRefineIndividualStrategy(t *testing.T) {
	r := newREPL(t, 12)
	target := r.Session().Package().CIs[0].Items[0].ID
	out := run(t, r, fmt.Sprintf("remove 1 %d\nrefine individual\nquit\n", target))
	if !strings.Contains(out, "profile refined (individual, 1 ops)") {
		t.Fatalf("individual refine failed:\n%s", out)
	}
	// Unknown strategy errors politely.
	target2 := r.Session().Package().CIs[0].Items[0].ID
	out = run(t, r, fmt.Sprintf("remove 1 %d\nrefine quantum\nquit\n", target2))
	if !strings.Contains(out, "unknown strategy") {
		t.Fatalf("expected strategy error:\n%s", out)
	}
}

func TestCandidatesWithTypeFilter(t *testing.T) {
	r := newREPL(t, 13)
	typ := replCity.POIs.ByCategory(poi.Acco)[0].Type
	out := run(t, r, fmt.Sprintf("candidates 1 acco %s\nquit\n", typ))
	if !strings.Contains(out, typ) {
		t.Fatalf("filtered candidates missing type %q:\n%s", typ, out)
	}
	// A filter that matches nothing reports politely.
	out = run(t, r, "candidates 1 acco igloo\nquit\n")
	if !strings.Contains(out, "no candidates") {
		t.Fatalf("expected 'no candidates':\n%s", out)
	}
}

func TestGenerateBadArgs(t *testing.T) {
	r := newREPL(t, 14)
	out := run(t, r, "generate 1 2\ngenerate a b c d\ngenerate 48.85 2.35 -1 0.1\nquit\n")
	if strings.Count(out, "error:") != 3 {
		t.Fatalf("expected 3 errors:\n%s", out)
	}
}

func TestDeleteBadArgs(t *testing.T) {
	r := newREPL(t, 15)
	out := run(t, r, "delete\ndelete 0\ndelete 99\nquit\n")
	if strings.Count(out, "error:") != 3 {
		t.Fatalf("expected 3 errors:\n%s", out)
	}
}

func TestHistoryCommand(t *testing.T) {
	r := newREPL(t, 16)
	out := run(t, r, "history\nquit\n")
	if !strings.Contains(out, "no interactions yet") {
		t.Fatalf("empty history wrong:\n%s", out)
	}
	target := r.Session().Package().CIs[0].Items[0].ID
	out = run(t, r, fmt.Sprintf("remove 1 %d\nhistory\nquit\n", target))
	if !strings.Contains(out, "member 0 REMOVE day 1") {
		t.Fatalf("history missing the removal:\n%s", out)
	}
}

func TestNewValidatesMember(t *testing.T) {
	r := newREPL(t, 10)
	tp := r.Session().Package()
	g, _ := profile.GenerateUniformGroup(replCity.Schema, 3, rng.New(11))
	if _, err := New(replCity, replEngine, g, consensus.PairwiseDis, 99, tp); err == nil {
		t.Fatal("out-of-range member accepted")
	}
}
