module grouptravel

go 1.24
