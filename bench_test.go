package grouptravel

// Benchmarks regenerating every table and figure of the paper, plus
// substrate and ablation benches for the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Table/figure benches run at reduced scale so the full suite stays in
// seconds; cmd/experiments regenerates the paper-scale numbers.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/experiments"
	"grouptravel/internal/fuzzy"
	"grouptravel/internal/geo"
	"grouptravel/internal/interact"
	"grouptravel/internal/lda"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/rng"
	"grouptravel/internal/route"
	"grouptravel/internal/router"
	"grouptravel/internal/server"
	"grouptravel/internal/sim"
	"grouptravel/internal/store"
	"grouptravel/internal/tags"
)

var (
	benchOnce   sync.Once
	benchCity   *dataset.City
	benchSecond *dataset.City
	benchEngine *core.Engine
	benchGroup  *profile.Group
	benchGP     *profile.Profile
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		if benchCity, err = dataset.Generate(dataset.TestSpec("BenchParis", 1)); err != nil {
			panic(err)
		}
		spec := dataset.TestSpec("BenchBarcelona", 2)
		spec.Center = geo.Point{Lat: 41.3874, Lon: 2.1686}
		if benchSecond, err = dataset.Generate(spec); err != nil {
			panic(err)
		}
		if benchEngine, err = core.NewEngine(benchCity); err != nil {
			panic(err)
		}
		if benchGroup, err = profile.GenerateUniformGroup(benchCity.Schema, 5, rng.New(3)); err != nil {
			panic(err)
		}
		if benchGP, err = consensus.GroupProfile(benchGroup, consensus.PairwiseDis); err != nil {
			panic(err)
		}
	})
}

func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.City = benchCity
	cfg.SecondCity = benchSecond
	cfg.GroupsPerCell = 2
	cfg.StudyGroupsPerCell = 1
	return cfg
}

// --- §3.2 distance claim (haversine vs equirectangular) ---

var distSink float64

func distancePoints() (a, b []geo.Point) {
	src := rng.New(7)
	n := 1024
	a = make([]geo.Point, n)
	b = make([]geo.Point, n)
	for i := 0; i < n; i++ {
		a[i] = geo.Point{Lat: src.Range(48.80, 48.92), Lon: src.Range(2.25, 2.42)}
		b[i] = geo.Point{Lat: src.Range(48.80, 48.92), Lon: src.Range(2.25, 2.42)}
	}
	return a, b
}

func BenchmarkHaversine(b *testing.B) {
	pa, pb := distancePoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distSink += geo.Haversine(pa[i%len(pa)], pb[i%len(pb)])
	}
}

func BenchmarkEquirectangular(b *testing.B) {
	pa, pb := distancePoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distSink += geo.Equirectangular(pa[i%len(pa)], pb[i%len(pb)])
	}
}

// --- Figure 1 / core operation: building one travel package ---

func BenchmarkBuildPackage(b *testing.B) {
	benchSetup(b)
	params := core.DefaultParams(5)
	for i := 0; i < b.N; i++ {
		// Vary the seed so the clustering memo does not trivialize the
		// bench, matching how experiments use the engine.
		params.Seed = int64(i % 16)
		if _, err := benchEngine.Build(benchGP, query.Default(), params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPackageNonPersonalized(b *testing.B) {
	benchSetup(b)
	params := core.DefaultParams(5)
	for i := 0; i < b.N; i++ {
		params.Seed = int64(i % 16)
		if _, err := benchEngine.Build(nil, query.Default(), params); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: refinement rounds (the cluster↔CI alternation of KFC).
func BenchmarkBuildRefineRounds0(b *testing.B) { benchRefine(b, 0) }
func BenchmarkBuildRefineRounds2(b *testing.B) { benchRefine(b, 2) }
func BenchmarkBuildRefineRounds5(b *testing.B) { benchRefine(b, 5) }

func benchRefine(b *testing.B, rounds int) {
	benchSetup(b)
	params := core.DefaultParams(5)
	params.RefineRounds = rounds
	for i := 0; i < b.N; i++ {
		params.Seed = int64(i % 16)
		if _, err := benchEngine.Build(benchGP, query.Default(), params); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: synthetic experiment ---

func BenchmarkTable2(b *testing.B) {
	benchSetup(b)
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3: median-user agreement ---

func BenchmarkTable3(b *testing.B) {
	benchSetup(b)
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 4 & 5: simulated personalization study ---

func BenchmarkTable4And5(b *testing.B) {
	benchSetup(b)
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.RunTables4And5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 6 & 7: customization study (Paris → Barcelona) ---

func BenchmarkTable6And7(b *testing.B) {
	benchSetup(b)
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.RunTables6And7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate benches ---

func BenchmarkFuzzyCluster(b *testing.B) {
	benchSetup(b)
	pts := make([]geo.Point, 0, benchCity.POIs.Len())
	for _, p := range benchCity.POIs.All() {
		pts = append(pts, p.Coord)
	}
	norm := benchCity.POIs.Normalizer()
	cfg := fuzzy.DefaultConfig(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i % 16)
		if _, err := fuzzy.Cluster(pts, norm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLDATrain(b *testing.B) {
	corpus := tags.NewCorpus()
	src := rng.New(11)
	for d := 0; d < 200; d++ {
		th := tags.RestaurantThemes[src.Intn(len(tags.RestaurantThemes))]
		text := ""
		for w := 0; w < 10; w++ {
			text += th.Words[src.Intn(len(th.Words))] + " "
		}
		corpus.AddText(text)
	}
	cfg := lda.DefaultConfig(6)
	cfg.Iterations = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lda.Train(corpus, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsensus(b *testing.B) {
	benchSetup(b)
	large, err := profile.GenerateUniformGroup(benchCity.Schema, 100, rng.New(13))
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range consensus.Methods {
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := consensus.GroupProfile(large, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: grid index vs brute force for the REPLACE operator's
// nearest-neighbor query.
func BenchmarkNearestGrid(b *testing.B) {
	benchSetup(b)
	q := geo.Point{Lat: 48.8566, Lon: 2.3522}
	for i := 0; i < b.N; i++ {
		benchCity.POIs.Nearest(q, 5, nil, nil)
	}
}

func BenchmarkNearestBruteForce(b *testing.B) {
	benchSetup(b)
	q := geo.Point{Lat: 48.8566, Lon: 2.3522}
	all := benchCity.POIs.All()
	for i := 0; i < b.N; i++ {
		best, bestD := -1, 1e18
		for j, p := range all {
			if d := geo.Equirectangular(q, p.Coord); d < bestD {
				best, bestD = j, d
			}
		}
		_ = best
	}
}

// --- Customization session (Figure 3 operators + refinement) ---

func BenchmarkCustomizationSession(b *testing.B) {
	benchSetup(b)
	tp, err := benchEngine.Build(benchGP, query.Default(), core.DefaultParams(4))
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.DefaultCustomizeOptions()
	for i := 0; i < b.N; i++ {
		sess, err := interact.NewSession(benchCity, tp)
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.SimulateCustomization(sess, benchGroup, opts, rng.New(int64(i))); err != nil {
			b.Fatal(err)
		}
		if _, err := interact.RefineBatch(benchGP, sess.Log()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Eq. 5 sample size (closed form; here for completeness) ---

func BenchmarkSampleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSampleSizeReport(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: item repetition across CIs (§3.2 fuzzy-clustering choice) ---

func BenchmarkBuildRepeatable(b *testing.B) { benchDistinct(b, false) }
func BenchmarkBuildDistinct(b *testing.B)   { benchDistinct(b, true) }

func benchDistinct(b *testing.B, distinct bool) {
	benchSetup(b)
	params := core.DefaultParams(4)
	params.DistinctItems = distinct
	for i := 0; i < b.N; i++ {
		params.Seed = int64(i % 16)
		if _, err := benchEngine.Build(benchGP, query.Default(), params); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: tension sweep and extended consensus methods ---

func BenchmarkTensionSweep(b *testing.B) {
	benchSetup(b)
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTensionSweep(cfg, []float64{0, 1, 5}, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsensusAblation(b *testing.B) {
	benchSetup(b)
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunConsensusAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel package construction on one shared engine ---
//
// The engine is concurrency-safe: N goroutines hammer one Engine over the
// 16 distinct clusterings the experiments use. The first pass per
// clustering misses the singleflight cache, everything after shares it —
// the benchmark asserts each distinct clustering was computed exactly once.

func BenchmarkBuildPackageParallel1(b *testing.B) { benchBuildParallel(b, 1) }
func BenchmarkBuildPackageParallel4(b *testing.B) { benchBuildParallel(b, 4) }
func BenchmarkBuildPackageParallel8(b *testing.B) { benchBuildParallel(b, 8) }

func benchBuildParallel(b *testing.B, goroutines int) {
	benchSetup(b)
	engine, err := core.NewEngine(benchCity)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the 16 clusterings outside the timer so every variant measures
	// pure build throughput over a hot cache.
	const seeds = 16
	for s := 0; s < seeds; s++ {
		params := core.DefaultParams(5)
		params.Seed = int64(s)
		if _, err := engine.Build(benchGP, query.Default(), params); err != nil {
			b.Fatal(err)
		}
	}
	if misses := engine.CacheMisses(); misses != seeds {
		b.Fatalf("cache misses = %d, want %d (each clustering computed exactly once)", misses, seeds)
	}
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			params := core.DefaultParams(5)
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				params.Seed = i % seeds
				if _, err := engine.Build(benchGP, query.Default(), params); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if misses := engine.CacheMisses(); misses != seeds {
		b.Fatalf("parallel builds re-clustered: misses = %d, want %d", misses, seeds)
	}
}

// --- Server throughput: concurrent package builds over HTTP ---

func BenchmarkServerThroughput(b *testing.B) {
	benchSetup(b)
	srv, err := server.New(benchCity)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One group for all requests.
	ratings := []map[string][]float64{}
	for m := 0; m < 3; m++ {
		member := map[string][]float64{}
		for _, c := range poi.Categories {
			dim := benchCity.Schema.Dim(c)
			v := make([]float64, dim)
			for j := range v {
				v[j] = float64((j + m) % 6)
			}
			member[c.String()] = v
		}
		ratings = append(ratings, member)
	}
	gid := postJSON(b, ts.URL+"/api/groups", map[string]any{"members": ratings}, http.StatusCreated)

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := map[string]any{"group": gid, "consensus": "pairwise", "k": 3}
			postJSON(b, ts.URL+"/api/packages", body, http.StatusCreated)
		}
	})
}

// --- Multi-city throughput: the registry layer under concurrent load ---
//
// N cities × concurrent package builds through the /cities tree. Compared
// with BenchmarkServerThroughput (one city, legacy routes) this measures
// the registry overhead: city resolution, pinning and per-city state
// lookup on every request.

var (
	benchMCOnce   sync.Once
	benchMCCities []*dataset.City
	benchMCDir    string
)

func benchMultiCitySetup(b *testing.B) {
	b.Helper()
	benchMCOnce.Do(func() {
		dir, err := os.MkdirTemp("", "grouptravel-bench-cities-*")
		if err != nil {
			panic(err)
		}
		for i, name := range []string{"Mc0", "Mc1", "Mc2"} {
			c, err := dataset.Generate(dataset.TestSpec(name, int64(50+i)))
			if err != nil {
				panic(err)
			}
			benchMCCities = append(benchMCCities, c)
			f, err := os.Create(filepath.Join(dir, strings.ToLower(name)+".json"))
			if err != nil {
				panic(err)
			}
			if err := c.SaveJSON(f); err != nil {
				panic(err)
			}
			f.Close()
		}
		benchMCDir = dir
	})
}

func BenchmarkMultiCityThroughput(b *testing.B) {
	benchMultiCitySetup(b)
	srv, err := server.NewMultiCity(server.Options{DataDir: benchMCDir})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One group per city, registered up front.
	keys := []string{"mc0", "mc1", "mc2"}
	gids := make([]int, len(keys))
	for i, key := range keys {
		ratings := []map[string][]float64{}
		for m := 0; m < 3; m++ {
			member := map[string][]float64{}
			for _, c := range poi.Categories {
				dim := benchMCCities[i].Schema.Dim(c)
				v := make([]float64, dim)
				for j := range v {
					v[j] = float64((j + m) % 6)
				}
				member[c.String()] = v
			}
			ratings = append(ratings, member)
		}
		gids[i] = postJSON(b, ts.URL+"/cities/"+key+"/groups", map[string]any{"members": ratings}, http.StatusCreated)
	}

	b.ResetTimer()
	var rr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(rr.Add(1)) % len(keys)
			body := map[string]any{"group": gids[i], "consensus": "pairwise", "k": 3}
			postJSON(b, ts.URL+"/cities/"+keys[i]+"/packages", body, http.StatusCreated)
		}
	})
}

// postJSON posts a JSON body and returns the created resource's id.
func postJSON(b *testing.B, url string, body any, wantStatus int) int {
	b.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b.Fatalf("%s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	return out.ID
}

// --- Parallel synthetic experiment scaling ---
//
// Workers share one engine (and its cluster cache) per RunTable2 call, so
// this measures the harness end to end: sequential task generation plus
// parallel builds over a shared, singleflight-guarded cache.

func BenchmarkTable2Parallel1(b *testing.B) { benchTable2Parallel(b, 1) }
func BenchmarkTable2Parallel4(b *testing.B) { benchTable2Parallel(b, 4) }
func BenchmarkTable2Parallel8(b *testing.B) { benchTable2Parallel(b, 8) }

func benchTable2Parallel(b *testing.B, workers int) {
	benchSetup(b)
	cfg := benchConfig()
	cfg.GroupsPerCell = 4
	cfg.Parallelism = workers
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Route ordering (day-plan extension) ---

func BenchmarkPlanDay(b *testing.B) {
	benchSetup(b)
	tp, err := benchEngine.Build(benchGP, query.Default(), core.DefaultParams(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.PlanDay(tp.CIs[i%len(tp.CIs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Persistence round trip ---

func BenchmarkPackageSaveLoad(b *testing.B) {
	benchSetup(b)
	tp, err := benchEngine.Build(benchGP, query.Default(), core.DefaultParams(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := store.SavePackage(&buf, tp); err != nil {
			b.Fatal(err)
		}
		if _, err := store.LoadPackage(&buf, benchCity); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Mutation persistence: snapshot-per-mutation vs WAL append ---
//
// The WAL refactor's acceptance criterion. The old durability path
// rewrote a city's whole snapshot on every mutation — O(city state) —
// while the write-ahead log appends one record — O(1). The sub-benchmarks
// hold cities of 10 / 1k / 100k packages: the snapshot cost grows
// linearly with city size, the append cost stays flat (both fsync, so
// the comparison is durable-write vs durable-write).

func BenchmarkMutationPersistence(b *testing.B) {
	benchSetup(b)
	tp, err := benchEngine.Build(benchGP, query.Default(), core.DefaultParams(3))
	if err != nil {
		b.Fatal(err)
	}
	// One customization op — the archetypal mutation a busy city persists.
	op := interact.Op{
		Kind: interact.OpRemove, Member: 0, CIIndex: 0,
		Removed: []*poi.POI{tp.CIs[0].Items[0]},
	}
	for _, n := range []int{10, 1000, 100000} {
		// One group plus n packages sharing one built package (records
		// reference it read-only; only encoding cost matters here).
		st := &store.ServerState{
			City:   benchCity.Name,
			NextID: n + 2,
			Groups: []store.GroupRecord{{ID: 1, Group: benchGroup}},
		}
		for i := 0; i < n; i++ {
			st.Packages = append(st.Packages, store.PackageRecord{
				ID: i + 2, GroupID: 1, Method: "pairwise", Package: tp,
			})
		}
		b.Run(fmt.Sprintf("snapshot/pkgs=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.WriteSnapshot(dir, "bench", st); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("walAppend/pkgs=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			w, err := store.OpenWAL(dir, "bench", store.WALSyncPolicy{Mode: store.WALSyncAlways})
			if err != nil {
				b.Fatal(err)
			}
			rec := store.CustomOpRecord(2, op, tp.CIs[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			w.Close()
		})
	}
}

// --- Weighted consensus ---

func BenchmarkConsensusWeighted(b *testing.B) {
	benchSetup(b)
	weights := make([]float64, benchGroup.Size())
	for i := range weights {
		weights[i] = 1 + float64(i)
	}
	for i := 0; i < b.N; i++ {
		if _, err := consensus.GroupProfileWeighted(benchGroup, consensus.PairwiseDis, weights); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Log shipping: follower apply throughput ---

// BenchmarkLogShipping measures how fast a follower replica drains a
// primary's write-ahead log: records/sec applied end-to-end — HTTP fetch,
// frame CRC verification, applier validation, materialization into the
// serving registries, and the follower's own durable WAL append. Each
// iteration boots a cold follower and catches it up on the same primary
// history.
func BenchmarkLogShipping(b *testing.B) {
	benchSetup(b)
	primary, err := server.NewMultiCity(server.Options{
		Cities: []*dataset.City{benchCity}, SnapshotDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()

	ratings := []map[string][]float64{}
	for m := 0; m < 3; m++ {
		member := map[string][]float64{}
		for _, c := range poi.Categories {
			dim := benchCity.Schema.Dim(c)
			v := make([]float64, dim)
			for j := range v {
				v[j] = float64((j + m) % 6)
			}
			member[c.String()] = v
		}
		ratings = append(ratings, member)
	}
	gid := postJSON(b, ts.URL+"/api/groups", map[string]any{"members": ratings}, http.StatusCreated)
	pid := postJSON(b, ts.URL+"/api/packages", map[string]any{"group": gid, "consensus": "pairwise", "k": 3}, http.StatusCreated)

	// A long run of cheap customization records: alternately remove and
	// re-add one POI, one WAL record each.
	resp, err := http.Get(fmt.Sprintf("%s/api/packages/%d", ts.URL, pid))
	if err != nil {
		b.Fatal(err)
	}
	var pkg struct {
		Days []struct {
			Items []struct{ ID int }
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&pkg); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	victim := pkg.Days[0].Items[0].ID
	const opRecords = 128
	for i := 0; i < opRecords; i++ {
		op := "remove"
		if i%2 == 1 {
			op = "add"
		}
		postJSON(b, fmt.Sprintf("%s/api/packages/%d/ops", ts.URL, pid),
			map[string]any{"member": 0, "op": op, "ci": 0, "poi": victim}, http.StatusOK)
	}
	const total = 2 + opRecords // group + package + ops
	key := strings.ToLower(benchCity.Name)

	b.ResetTimer()
	var applied int64
	for i := 0; i < b.N; i++ {
		f, err := server.NewMultiCity(server.Options{
			Cities: []*dataset.City{benchCity}, SnapshotDir: b.TempDir(),
			Follow: ts.URL, FollowPoll: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Follower().CatchUp(2 * time.Minute); err != nil {
			b.Fatal(err)
		}
		lag, _ := f.Follower().Lag(key)
		if lag.AppliedSeq < total {
			b.Fatalf("follower applied %d of %d records", lag.AppliedSeq, total)
		}
		applied += lag.AppliedSeq
		f.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(applied)/b.Elapsed().Seconds(), "records/s")
}

// --- Push replication: streaming follower drain throughput ---

// BenchmarkPushReplication measures the push-based replication path end
// to end: a streaming follower (its poll interval set far too long to
// ever matter) connects, receives the primary's history over one stream
// response, and applies it pipelined — frames decode off the wire
// concurrently with apply, and each apply batch lands in the follower's
// log under a single group-commit fsync instead of one per frame.
// Directly comparable with BenchmarkLogShipping's records/s: the same
// cold-follower-per-iteration structure over the same kind of history;
// the delta is batched persistence plus streamed decode.
func BenchmarkPushReplication(b *testing.B) {
	pushReplicationBench(b, false)
}

// BenchmarkPushReplicationEpochFenced is the same drain with the
// replication epoch active on the wire: the primary owns term 1 (seeded
// on disk before boot, owner == its advertised URL so it stays
// writable), so every batch header carries X-GT-Epoch, every follower
// request stamps it back, and both ends run the staleness check per
// exchange. The delta against BenchmarkPushReplication is the fencing
// machinery's whole wire cost — it should be noise.
func BenchmarkPushReplicationEpochFenced(b *testing.B) {
	pushReplicationBench(b, true)
}

func pushReplicationBench(b *testing.B, withEpoch bool) {
	benchSetup(b)
	intervalSync, err := store.ParseWALSync("interval")
	if err != nil {
		b.Fatal(err)
	}
	primaryDir := b.TempDir()
	opts := server.Options{
		Cities: []*dataset.City{benchCity}, SnapshotDir: primaryDir,
		WALSync: intervalSync,
	}
	if withEpoch {
		opts.Advertise = "http://bench-primary:8080"
		if err := store.WriteEpoch(primaryDir, strings.ToLower(benchCity.Name),
			store.Epoch{Epoch: 1, Primary: opts.Advertise}); err != nil {
			b.Fatal(err)
		}
	}
	primary, err := server.NewMultiCity(opts)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()

	ratings := []map[string][]float64{}
	for m := 0; m < 3; m++ {
		member := map[string][]float64{}
		for _, c := range poi.Categories {
			dim := benchCity.Schema.Dim(c)
			v := make([]float64, dim)
			for j := range v {
				v[j] = float64((j + m) % 6)
			}
			member[c.String()] = v
		}
		ratings = append(ratings, member)
	}
	gid := postJSON(b, ts.URL+"/api/groups", map[string]any{"members": ratings}, http.StatusCreated)

	// A wider history than LogShipping's: several packages, each with its
	// own run of alternating remove/add customization records.
	const packages = 8
	const opsPerPackage = 96
	for p := 0; p < packages; p++ {
		pid := postJSON(b, ts.URL+"/api/packages", map[string]any{"group": gid, "consensus": "pairwise", "k": 3}, http.StatusCreated)
		resp, err := http.Get(fmt.Sprintf("%s/api/packages/%d", ts.URL, pid))
		if err != nil {
			b.Fatal(err)
		}
		var pkg struct {
			Days []struct {
				Items []struct{ ID int }
			}
		}
		if err := json.NewDecoder(resp.Body).Decode(&pkg); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		victim := pkg.Days[0].Items[0].ID
		for i := 0; i < opsPerPackage; i++ {
			op := "remove"
			if i%2 == 1 {
				op = "add"
			}
			postJSON(b, fmt.Sprintf("%s/api/packages/%d/ops", ts.URL, pid),
				map[string]any{"member": 0, "op": op, "ci": 0, "poi": victim}, http.StatusOK)
		}
	}
	const total = 1 + packages + packages*opsPerPackage
	key := strings.ToLower(benchCity.Name)

	b.ResetTimer()
	var applied int64
	for i := 0; i < b.N; i++ {
		f, err := server.NewMultiCity(server.Options{
			Cities: []*dataset.City{benchCity}, SnapshotDir: b.TempDir(),
			Follow: ts.URL, FollowPoll: time.Hour, // wakeups only: a poll could never land in time
		})
		if err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Minute)
		for {
			if l, ok := f.Follower().Lag(key); ok && l.AppliedSeq >= total {
				applied += l.AppliedSeq
				break
			}
			if time.Now().After(deadline) {
				l, _ := f.Follower().Lag(key)
				b.Fatalf("follower applied %d of %d records", l.AppliedSeq, total)
			}
			time.Sleep(100 * time.Microsecond)
		}
		f.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(applied)/b.Elapsed().Seconds(), "records/s")
}

// --- Front-tier routing: proxy overhead per read ---

// BenchmarkRouterProxy measures what the consistent-hash front tier
// costs on the read path: the same GET served directly by a backend vs
// routed through the router (ring lookup, health-view snapshot,
// candidate selection, one extra HTTP hop, response relay). The delta is
// the price of follower fan-out and read-your-writes pinning.
//
// Alloc ledger for the routed row (same machine, same workload): 205
// allocs/op when forward() formatted a URL string for http.NewRequest to
// parse back apart, 192 allocs/op with the outbound request assembled
// directly over a cached parsed base URL. The remaining gap to direct
// (~74) is the second net/http round trip itself — transport bookkeeping
// and the relayed header set — not request construction.
func BenchmarkRouterProxy(b *testing.B) {
	benchSetup(b)
	srv, err := server.NewMultiCity(server.Options{Cities: []*dataset.City{benchCity}})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rt, err := router.New(router.Options{
		Topology:     &router.Topology{Shards: []router.Shard{{Name: "s1", Nodes: []string{ts.URL}}}},
		PollInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	rt.Poll()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	path := "/cities/" + strings.ToLower(benchCity.Name) + "/pois?k=5"
	get := func(b *testing.B, url string) {
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("%s: status %d", url, resp.StatusCode)
			}
		}
	}
	b.Run("direct", func(b *testing.B) { get(b, ts.URL+path) })
	b.Run("routed", func(b *testing.B) { get(b, rts.URL+path) })
}

// BenchmarkHotReadCached measures the zero-copy read path: the same GET
// served over HTTP (client + transport included, comparable to
// BenchmarkRouterProxy/direct) and at the bare handler (recorder only —
// the server-side cost in isolation). After the first iteration every
// response is a byte-cache hit: a map lookup plus one Write of the
// stored bytes, no JSON encoding.
func BenchmarkHotReadCached(b *testing.B) {
	benchSetup(b)
	srv, err := server.NewMultiCity(server.Options{Cities: []*dataset.City{benchCity}})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	path := "/cities/" + strings.ToLower(benchCity.Name) + "/pois?k=5"
	b.Run("http", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	b.Run("handler", func(b *testing.B) {
		h := srv.Handler()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
	// The same request with a query string past the cache-key bound: the
	// server answers it identically but never caches, so this is the
	// pre-cache render+encode cost — the baseline the cached rows above
	// are measured against.
	b.Run("handler-uncached", func(b *testing.B) {
		h := srv.Handler()
		long := path + "&pad=" + strings.Repeat("x", 256)
		req := httptest.NewRequest(http.MethodGet, long, nil)
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
}

// BenchmarkRouterEdgeCache prices the router's edge cache: the same
// routed GET served as a seq-validated cache hit (zero proxy hops — a
// mutex-guarded map lookup and one Write of the stored bytes) vs paying
// the upstream fill. Rows:
//
//   - hit: recorder-driven cache hit at the router handler — the
//     router-side cost of a cached routed read. Against
//     BenchmarkRouterProxy/routed (the uncached routed path, ns/op) the
//     gap is the proxy hop the cache removes — well past 3×.
//   - miss: the same recorder harness with the route guard forcing the
//     cache aside, so every iteration pays the real upstream HTTP hop —
//     the same-harness uncached baseline (the shard still serves from
//     its own byte cache, exactly like BenchmarkRouterProxy/routed).
//   - hit-http: the cached read through a real client socket, end-to-end
//     comparable with the BenchmarkRouterProxy rows.
func BenchmarkRouterEdgeCache(b *testing.B) {
	benchSetup(b)
	// Persistence on: mutations allocate WAL sequences, so city-scoped
	// GETs carry the X-GT-Applied-Seq stamp the cache validates against.
	srv, err := server.NewMultiCity(server.Options{Cities: []*dataset.City{benchCity}, SnapshotDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rt, err := router.New(router.Options{
		Topology:     &router.Topology{Shards: []router.Shard{{Name: "s1", Nodes: []string{ts.URL}}}},
		PollInterval: -1,
		EdgeCache:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	rt.Poll()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	key := strings.ToLower(benchCity.Name)
	// One committed mutation opens the city's sequence space.
	ratings := []map[string][]float64{}
	for m := 0; m < 3; m++ {
		member := map[string][]float64{}
		for _, c := range poi.Categories {
			v := make([]float64, benchCity.Schema.Dim(c))
			for j := range v {
				v[j] = float64((j + m) % 6)
			}
			member[c.String()] = v
		}
		ratings = append(ratings, member)
	}
	postJSON(b, rts.URL+"/cities/"+key+"/groups", map[string]any{"members": ratings}, http.StatusCreated)
	rt.Poll() // the health feed's appliedSeq bound a hit must prove

	path := "/cities/" + key + "/pois?k=5"
	// Warm the entry, then pin that hits actually happen before timing.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(rts.URL + path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if i == 1 && resp.Header.Get("X-GT-Edge") != "hit" {
			b.Fatal("warm read was not an edge-cache hit")
		}
	}

	h := rt.Handler()
	b.Run("hit", func(b *testing.B) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
	// The wait param trips the streamed-response guard, so the router
	// proxies every iteration; the shard ignores it and serves its own
	// byte-cached render — the routed-uncached baseline.
	b.Run("miss", func(b *testing.B) {
		req := httptest.NewRequest(http.MethodGet, path+"&wait=0", nil)
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
	b.Run("hit-http", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(rts.URL + path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}
