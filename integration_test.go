package grouptravel

// Integration test: one end-to-end journey across every major subsystem —
// generate a city, form a group from a recruited pool, build a budgeted
// package with distinct days, order the days into walking routes,
// customize through a session and through every collaboration model,
// refine with both strategies, persist and reload everything, and rebuild
// in a second city.

import (
	"bytes"
	"testing"

	"grouptravel/internal/collab"
	"grouptravel/internal/consensus"
	"grouptravel/internal/dataset"
	"grouptravel/internal/interact"
	"grouptravel/internal/metrics"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/sim"
)

func TestEndToEndJourney(t *testing.T) {
	// --- city + engine ---
	paris, err := GenerateCity(dataset.TestSpec("Paris", 777))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(paris)
	if err != nil {
		t.Fatal(err)
	}

	// --- recruit a pool and form the travel group from it ---
	src := rng.New(42)
	var pool []*Profile
	for s := 0; s < 6; s++ {
		seg, err := profile.GenerateUniformGroup(paris.Schema, 10, src.Split("seg"))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, seg.Members...)
	}
	group, err := profile.FormGroup(paris.Schema, pool, 6, profile.UniformBand, src)
	if err != nil {
		t.Fatal(err)
	}

	// --- weighted consensus: the organizer (member 0) counts double ---
	weights := []float64{2, 1, 1, 1, 1, 1}
	gp, err := GroupProfileWeighted(group, PairwiseDis, weights)
	if err != nil {
		t.Fatal(err)
	}

	// --- budgeted, distinct-day build ---
	q, err := NewQuery(1, 1, 1, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams(4)
	params.DistinctItems = true
	tp, err := engine.Build(gp, q, params)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Valid() {
		t.Fatal("package invalid")
	}
	seen := map[int]bool{}
	for _, c := range tp.CIs {
		if c.Cost() > q.Budget {
			t.Fatalf("day over budget: %v", c.Cost())
		}
		for _, it := range c.Items {
			if seen[it.ID] {
				t.Fatal("distinct mode repeated a POI")
			}
			seen[it.ID] = true
		}
	}

	// --- walking routes ---
	plans, err := PlanPackage(tp)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		if len(p.Order) != len(tp.CIs[i].Items) || p.LengthKm <= 0 {
			t.Fatalf("bad plan %d: %+v", i, p)
		}
	}

	// --- customization: direct session ops + a collaboration round ---
	sess, err := NewSession(paris, tp)
	if err != nil {
		t.Fatal(err)
	}
	victim := sess.Package().CIs[0].Items[2]
	reqs := []collab.Request{
		{Member: 1, Kind: interact.OpRemove, CIIndex: 0, POIID: victim.ID},
		{Member: 2, Kind: interact.OpReplace, CIIndex: 0, POIID: victim.ID},
		{Member: 3, Kind: interact.OpRemove, CIIndex: 0, POIID: victim.ID},
	}
	outcomes, err := collab.RunHybrid(sess, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if collab.AppliedCount(outcomes) != 1 {
		t.Fatalf("hybrid outcomes: %+v", outcomes)
	}
	if err := sim.SimulateCustomization(sess, group, sim.DefaultCustomizeOptions(), src.Split("ops")); err != nil {
		t.Fatal(err)
	}
	if len(sess.Log()) < 2 {
		t.Fatalf("too few interactions: %d", len(sess.Log()))
	}

	// --- refinement, both strategies ---
	batchGP, err := RefineBatch(gp, sess.Log())
	if err != nil {
		t.Fatal(err)
	}
	_, indivGP, err := RefineIndividual(group, PairwiseDis, sess.Log())
	if err != nil {
		t.Fatal(err)
	}

	// --- persistence round trips ---
	var buf bytes.Buffer
	if err := SaveGroup(&buf, group); err != nil {
		t.Fatal(err)
	}
	group2, err := LoadGroup(&buf, paris.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if group2.Size() != group.Size() {
		t.Fatal("group round trip lost members")
	}
	buf.Reset()
	if err := SaveProfile(&buf, batchGP); err != nil {
		t.Fatal(err)
	}
	batchGP2, err := LoadProfile(&buf, paris.Schema)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := SavePackage(&buf, tp); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPackage(&buf, paris); err != nil {
		t.Fatal(err)
	}

	// --- cross-city rebuild with the reloaded refined profile ---
	spec := dataset.TestSpec("Barcelona", 778)
	spec.Center = Point{Lat: 41.3874, Lon: 2.1686}
	barcelona, err := GenerateCity(spec)
	if err != nil {
		t.Fatal(err)
	}
	barcaEngine, err := NewEngine(barcelona)
	if err != nil {
		t.Fatal(err)
	}
	barcaTP, err := barcaEngine.Build(batchGP2, DefaultQuery(), DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if !barcaTP.Valid() {
		t.Fatal("Barcelona package invalid")
	}
	// The refined profile must fit the group at least as well as a
	// non-personalized build.
	plain, err := barcaEngine.Build(nil, DefaultQuery(), DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	meanU := func(tp *TravelPackage) float64 {
		s := 0.0
		for _, m := range group.Members {
			s += sim.Utility(m, tp)
		}
		return s / float64(group.Size())
	}
	if meanU(barcaTP) < meanU(plain) {
		t.Fatalf("refined cross-city package (%v) fits worse than non-personalized (%v)",
			meanU(barcaTP), meanU(plain))
	}

	// --- metrics consistency on the final artifact ---
	d := barcaTP.Measure()
	if d.Representativity <= 0 || metrics.Personalization(barcaTP.CIs, batchGP2) <= 0 {
		t.Fatalf("degenerate final metrics: %+v", d)
	}

	// The individual strategy also yields a buildable profile.
	indivTP, err := barcaEngine.Build(indivGP, DefaultQuery(), DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if !indivTP.Valid() {
		t.Fatal("individual-refined package invalid")
	}
	if len(consensus.Methods) != 4 {
		t.Fatal("the paper's four methods must stay available")
	}
}
