// Package grouptravel is the public API of the GroupTravel reproduction —
// a framework that generates customized travel packages (TPs) for groups
// of travelers, after "GroupTravel: Customizing Travel Packages for
// Groups" (Amer-Yahia, Elbassuoni, Omidvar-Tehrani, Borromeo, Farokhnejad;
// EDBT 2019).
//
// A travel package is a set of k Composite Items (CIs); each CI bundles
// POIs of requested categories (accommodation, transportation, restaurant,
// attraction) under a budget. Packages are simultaneously valid
// (satisfying the group query), representative (covering the city),
// cohesive (each CI geographically compact) and personalized (matching a
// group profile aggregated from member preferences by a consensus
// function). Groups can then customize a package interactively — REMOVE,
// ADD, REPLACE, GENERATE — and the interactions refine the group profile
// for future trips.
//
// # Quick start
//
//	city, _ := grouptravel.NewCity("Paris")
//	engine, _ := grouptravel.NewEngine(city)
//
//	alice, _ := grouptravel.ProfileFromRatings(city.Schema, ratings)
//	group, _ := grouptravel.NewGroup(city.Schema, []*grouptravel.Profile{alice, bob})
//	gp, _ := grouptravel.GroupProfile(group, grouptravel.PairwiseDis)
//
//	tp, _ := engine.Build(gp, grouptravel.DefaultQuery(), grouptravel.DefaultParams(5))
//
// See examples/ for complete programs, and internal packages for the
// substrates (fuzzy clustering, LDA, synthetic city generation, the
// simulated user study and the experiment harness reproducing the paper's
// tables).
package grouptravel

import (
	"io"

	"grouptravel/internal/ci"
	"grouptravel/internal/consensus"
	"grouptravel/internal/core"
	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/interact"
	"grouptravel/internal/poi"
	"grouptravel/internal/profile"
	"grouptravel/internal/query"
	"grouptravel/internal/route"
	"grouptravel/internal/store"
)

// Re-exported core types. Each alias carries the full documentation of its
// defining package.
type (
	// Point is a geographic coordinate (latitude, longitude in degrees).
	Point = geo.Point
	// Rect is the rectangle of the GENERATE customization operator.
	Rect = geo.Rect
	// POI is a point of interest (Table 1 of the paper).
	POI = poi.POI
	// Category is one of acco, trans, rest, attr.
	Category = poi.Category
	// Schema maps categories to vector dimensions shared by items and profiles.
	Schema = poi.Schema
	// City is a POI dataset with its schema and topic models.
	City = dataset.City
	// Spec configures synthetic city generation.
	Spec = dataset.Spec
	// Profile is a user's (or group's aggregated) travel profile.
	Profile = profile.Profile
	// Group is a set of member profiles.
	Group = profile.Group
	// ConsensusMethod aggregates member profiles into a group profile.
	ConsensusMethod = consensus.Method
	// Query is the group query ⟨#acco, #trans, #rest, #attr, B⟩.
	Query = query.Query
	// CI is a Composite Item.
	CI = ci.CI
	// TravelPackage is a set of k CIs built for a group.
	TravelPackage = core.TravelPackage
	// Params are the Eq. 1 weights and algorithm controls.
	Params = core.Params
	// Engine builds travel packages for one city.
	Engine = core.Engine
	// Session is an interactive customization session.
	Session = interact.Session
	// Op is one logged customization operation.
	Op = interact.Op
)

// POI categories.
const (
	Acco  = poi.Acco
	Trans = poi.Trans
	Rest  = poi.Rest
	Attr  = poi.Attr
)

// The paper's four consensus methods (§4.1).
var (
	AveragePref = consensus.AveragePref
	LeastMisery = consensus.LeastMisery
	PairwiseDis = consensus.PairwiseDis
	VarianceDis = consensus.VarianceDis
	// ConsensusMethods lists all four in the paper's order.
	ConsensusMethods = consensus.Methods
)

// NewCity generates one of the eight built-in TourPedia cities at paper
// scale (deterministic per city name).
func NewCity(name string) (*City, error) { return dataset.BuiltinCity(name) }

// GenerateCity builds a synthetic city from a custom Spec.
func GenerateCity(spec Spec) (*City, error) { return dataset.Generate(spec) }

// LoadCity reads a city saved with (*City).SaveJSON.
func LoadCity(r io.Reader) (*City, error) { return dataset.LoadJSON(r) }

// NewEngine prepares a travel-package engine over a city. The engine is
// safe for concurrent use: goroutines share its singleflight cluster
// cache, so each distinct clustering is computed exactly once.
func NewEngine(city *City) (*Engine, error) { return core.NewEngine(city) }

// DefaultQuery returns the paper's default ⟨1 acco, 1 trans, 1 rest,
// 3 attr⟩ query with unlimited budget.
func DefaultQuery() Query { return query.Default() }

// NewQuery builds a query with explicit category counts and budget.
func NewQuery(acco, trans, rest, attr int, budget float64) (Query, error) {
	return query.New(acco, trans, rest, attr, budget)
}

// DefaultParams returns the default Eq. 1 parameters for k CIs.
func DefaultParams(k int) Params { return core.DefaultParams(k) }

// NewProfile returns an all-zero profile for the schema.
func NewProfile(schema *Schema) *Profile { return profile.New(schema) }

// ProfileFromRatings builds a profile from 0–5 ratings per category,
// normalized as in §2.2.
func ProfileFromRatings(schema *Schema, ratings map[Category][]float64) (*Profile, error) {
	return profile.FromRatings(schema, ratings)
}

// NewGroup assembles member profiles into a travel group.
func NewGroup(schema *Schema, members []*Profile) (*Group, error) {
	return profile.NewGroup(schema, members)
}

// GroupProfile aggregates a group into a single profile with the given
// consensus method (§2.3).
func GroupProfile(g *Group, method ConsensusMethod) (*Profile, error) {
	return consensus.GroupProfile(g, method)
}

// NewSession starts an interactive customization session over a package
// (§3.3). The original package is not mutated.
func NewSession(city *City, tp *TravelPackage) (*Session, error) {
	return interact.NewSession(city, tp)
}

// RefineBatch applies the batch profile-refinement strategy to a group
// profile from a session's operation log.
func RefineBatch(groupProfile *Profile, ops []Op) (*Profile, error) {
	return interact.RefineBatch(groupProfile, ops)
}

// RefineIndividual applies the individual strategy: refine each member's
// profile from their own operations, then re-aggregate.
func RefineIndividual(g *Group, method ConsensusMethod, ops []Op) (*Group, *Profile, error) {
	return interact.RefineIndividual(g, method, ops)
}

// GroupProfileWeighted aggregates member profiles under per-member weights
// (e.g. the trip organizer counts double). Weight-0 members are excluded.
func GroupProfileWeighted(g *Group, method ConsensusMethod, weights []float64) (*Profile, error) {
	return consensus.GroupProfileWeighted(g, method, weights)
}

// Extension consensus methods beyond the paper's four (see
// internal/consensus): the optimistic most-pleasure aggregation and
// average-without-misery with a veto threshold of 0.1.
var (
	MostPleasure = consensus.MostPleasure
	AvgNoMisery  = consensus.AvgNoMisery
)

// DayPlan is an ordered walking route through one CI's items.
type DayPlan = route.Plan

// PlanDay orders a CI's POIs into a walking route starting at its
// accommodation (nearest-neighbor construction + 2-opt improvement).
func PlanDay(c *CI) (DayPlan, error) { return route.PlanDay(c) }

// PlanPackage orders every CI of a package.
func PlanPackage(tp *TravelPackage) ([]DayPlan, error) { return route.PlanPackage(tp.CIs) }

// SaveProfile / LoadProfile persist a travel profile as versioned JSON.
func SaveProfile(w io.Writer, p *Profile) error { return store.SaveProfile(w, p) }

// LoadProfile reads a profile saved with SaveProfile, validated against
// the schema.
func LoadProfile(r io.Reader, schema *Schema) (*Profile, error) {
	return store.LoadProfile(r, schema)
}

// SaveGroup / LoadGroup persist a whole group.
func SaveGroup(w io.Writer, g *Group) error { return store.SaveGroup(w, g) }

// LoadGroup reads a group saved with SaveGroup.
func LoadGroup(r io.Reader, schema *Schema) (*Group, error) {
	return store.LoadGroup(r, schema)
}

// SavePackage / LoadPackage persist a travel package (POIs by id,
// re-resolved against the same city on load).
func SavePackage(w io.Writer, tp *TravelPackage) error { return store.SavePackage(w, tp) }

// LoadPackage reads a package saved with SavePackage.
func LoadPackage(r io.Reader, city *City) (*TravelPackage, error) {
	return store.LoadPackage(r, city)
}
