// Httpapi drives the GroupTravel HTTP API end to end in one process: it
// starts the server on a loopback port, registers a group from member
// ratings, builds a package, applies a customization operator, and
// refines-and-rebuilds — the request sequence a Figure 3 style web GUI
// would issue.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"grouptravel"
	"grouptravel/internal/dataset"
	"grouptravel/internal/server"
)

func main() {
	city, err := grouptravel.GenerateCity(dataset.TestSpec("Paris", 55))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(city)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("server on", base)

	// 1. Inspect the city schema to know what to rate.
	var cityInfo struct {
		Schema map[string][]string `json:"schema"`
	}
	get(base+"/api/city", &cityInfo)
	fmt.Printf("schema: %d acco types, %d attraction topics\n",
		len(cityInfo.Schema["acco"]), len(cityInfo.Schema["attr"]))

	// 2. Register a two-member group from 0-5 ratings.
	ratings := func(shift int) map[string][]float64 {
		out := map[string][]float64{}
		for cat, labels := range cityInfo.Schema {
			v := make([]float64, len(labels))
			for j := range v {
				v[j] = float64((j + shift) % 6)
			}
			out[cat] = v
		}
		return out
	}
	var group struct {
		ID         int     `json:"id"`
		Uniformity float64 `json:"uniformity"`
	}
	post(base+"/api/groups", map[string]any{
		"members": []any{ratings(0), ratings(2)},
	}, &group)
	fmt.Printf("group %d registered (uniformity %.2f)\n", group.ID, group.Uniformity)

	// 3. Build a 3-day package with pairwise-disagreement consensus.
	var pkg struct {
		ID   int `json:"id"`
		Days []struct {
			Items []struct {
				ID   int    `json:"id"`
				Name string `json:"name"`
			} `json:"items"`
		} `json:"days"`
	}
	post(base+"/api/packages", map[string]any{
		"group": group.ID, "consensus": "pairwise", "k": 3,
	}, &pkg)
	fmt.Printf("package %d built with %d days\n", pkg.ID, len(pkg.Days))

	// 4. Member 1 removes the first POI of day 1.
	target := pkg.Days[0].Items[0]
	var op struct {
		Applied bool `json:"applied"`
	}
	post(fmt.Sprintf("%s/api/packages/%d/ops", base, pkg.ID), map[string]any{
		"member": 1, "op": "remove", "ci": 0, "poi": target.ID,
	}, &op)
	fmt.Printf("removed %q: applied=%v\n", target.Name, op.Applied)

	// 5. Refine (batch) and rebuild.
	var refined struct {
		Operations int `json:"operations"`
		NewPackage *struct {
			ID int `json:"id"`
		} `json:"newPackage"`
	}
	post(fmt.Sprintf("%s/api/packages/%d/refine", base, pkg.ID), map[string]any{
		"strategy": "batch", "rebuild": true,
	}, &refined)
	fmt.Printf("refined from %d operation(s); rebuilt package %d\n",
		refined.Operations, refined.NewPackage.ID)

	// 6. Fetch the rebuilt package with walking routes.
	var routed struct {
		Days []struct {
			WalkKm float64 `json:"walkKm"`
		} `json:"days"`
	}
	get(fmt.Sprintf("%s/api/packages/%d?routes=1", base, refined.NewPackage.ID), &routed)
	for i, d := range routed.Days {
		fmt.Printf("day %d: %.1f km walk\n", i+1, d.WalkKm)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func post(url string, body, out any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
