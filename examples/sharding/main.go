// Sharding walks the scale-out topology end to end in one process: a
// consistent-hash router in front of two shards, each a primary plus one
// log-shipping follower. Cities are generated, spread across shards by
// the hash ring, and mutated *through the router* — which discovers each
// shard's primary from node health, pins the writing session's reads to
// replicas that have applied its writes (read-your-writes), and fans
// token-less reads out to followers. Then a follower is killed mid-read:
// reads keep flowing, one failover at a time.
//
// The same flow with real processes:
//
//	grouptravel-server -data-dir ./cities -snapshot-dir ./s1a -addr :8080 -advertise http://host1:8080
//	grouptravel-server -data-dir ./cities -snapshot-dir ./s1b -addr :8081 -follow http://host1:8080
//	grouptravel-server -data-dir ./cities -snapshot-dir ./s2a -addr :8090 -advertise http://host2:8090
//	grouptravel-server -data-dir ./cities -snapshot-dir ./s2b -addr :8091 -follow http://host2:8090
//	grouptravel-router -topology topology.json -addr :7080
//
// with topology.json:
//
//	{"shards": [
//	  {"name": "s1", "nodes": ["http://host1:8080", "http://host1:8081"]},
//	  {"name": "s2", "nodes": ["http://host2:8090", "http://host2:8091"]}
//	]}
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"grouptravel"
	"grouptravel/internal/dataset"
	"grouptravel/internal/router"
	"grouptravel/internal/server"
)

func main() {
	// 1. Four cities, served by every backend — the *router* decides
	// which shard owns which key.
	var cities []*dataset.City
	for i, name := range []string{"Paris", "Rome", "Lisbon", "Vienna"} {
		c, err := grouptravel.GenerateCity(dataset.TestSpec(name, int64(30+i)))
		if err != nil {
			log.Fatal(err)
		}
		cities = append(cities, c)
	}

	// 2. Two shards, each primary + follower with its own state dirs.
	type node struct {
		srv  *server.Server
		url  string
		stop func()
	}
	newNode := func(follow string) node {
		dir, err := os.MkdirTemp("", "grouptravel-shard-*")
		if err != nil {
			log.Fatal(err)
		}
		srv, err := server.NewMultiCity(server.Options{
			Cities: cities, SnapshotDir: dir,
			Follow: follow, FollowPoll: 5 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		url, stop := serve(srv)
		return node{srv: srv, url: url, stop: func() { stop(); srv.Close(); os.RemoveAll(dir) }}
	}
	s1p := newNode("")
	s1f := newNode(s1p.url)
	s2p := newNode("")
	s2f := newNode(s2p.url)
	defer s1p.stop()
	defer s1f.stop()
	defer s2p.stop()
	defer s2f.stop()

	// 3. The router: roles are discovered, not configured — primaries are
	// deliberately listed second.
	rt, err := router.New(router.Options{
		Topology: &router.Topology{Shards: []router.Shard{
			{Name: "s1", Nodes: []string{s1f.url, s1p.url}},
			{Name: "s2", Nodes: []string{s2f.url, s2p.url}},
		}},
		PollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	rt.Poll()
	routerURL, stopRouter := serveHandler(rt.Handler())
	defer stopRouter()
	fmt.Println("router on", routerURL, "over shards s1", []string{s1p.url, s1f.url}, "s2", []string{s2p.url, s2f.url})
	for _, c := range cities {
		key := keyOf(c)
		fmt.Printf("  city %-7s -> shard %s\n", key, rt.Ring().Shard(key))
	}

	// 4. Mutate through the router with a session id. The response
	// carries the commit token; the immediate read-back is pinned to a
	// replica at or past it — even though the followers lag.
	gids := map[string]int{}
	for _, c := range cities {
		key := keyOf(c)
		hdr, gid := postWithSession(routerURL+"/cities/"+key+"/groups", groupBody(routerURL, key), "demo-session")
		gids[key] = gid
		backend, _ := readBack(routerURL, key, gid, "demo-session")
		fmt.Printf("  wrote %s group %d (shard %s, seq %s) — read-back served by %s\n",
			key, gid, hdr.Get("X-Gt-Shard"), hdr.Get("X-Gt-Seq"), backend)
	}

	// 5. Token-less reads fan out to followers once they catch up.
	time.Sleep(100 * time.Millisecond) // let the followers drain and the feed notice
	rt.Poll()
	key := keyOf(cities[0])
	backend, _ := readBack(routerURL, key, gids[key], "")
	fmt.Printf("token-less read of %s served by %s (a follower)\n", key, backend)

	// 6. Kill that follower mid-read: reads keep flowing — the router
	// fails over to the next candidate and the health feed sheds the
	// corpse on its next poll.
	var killed string
	if rt.Ring().Shard(key) == "s1" {
		killed = s1f.url
		s1f.stop()
	} else {
		killed = s2f.url
		s2f.stop()
	}
	fmt.Println("killed follower", killed, "— reading on")
	ok := 0
	for i := 0; i < 20; i++ {
		if _, err := readBack(routerURL, key, gids[key], ""); err == nil {
			ok++
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("%d/20 reads succeeded through the kill window\n", ok)

	// 7. The router's own health shows where traffic went.
	var health struct {
		Counters struct {
			ReadsPrimary  int64 `json:"readsPrimary"`
			ReadsFollower int64 `json:"readsFollower"`
			ReadsPinned   int64 `json:"readsPinned"`
			ReadFailovers int64 `json:"readFailovers"`
			Mutations     int64 `json:"mutations"`
		} `json:"counters"`
	}
	getJSON(routerURL+"/healthz", &health)
	fmt.Printf("router counters: %+v\n", health.Counters)
}

func keyOf(c *dataset.City) string { return strings.ToLower(c.Name) }

// groupBody builds a 3-member group over the city's schema, fetched
// through the router like any client would.
func groupBody(routerURL, key string) map[string]any {
	var info struct {
		Schema map[string][]string `json:"schema"`
	}
	getJSON(routerURL+"/cities/"+key, &info)
	members := []map[string][]float64{}
	for m := 0; m < 3; m++ {
		member := map[string][]float64{}
		for cat, labels := range info.Schema {
			v := make([]float64, len(labels))
			for j := range v {
				v[j] = float64((j + m) % 6)
			}
			member[cat] = v
		}
		members = append(members, member)
	}
	return map[string]any{"members": members}
}

// readBack GETs a group through the router, reporting which backend
// served it.
func readBack(routerURL, city string, gid int, session string) (string, error) {
	req, err := http.NewRequest("GET", fmt.Sprintf("%s/cities/%s/groups/%d", routerURL, city, gid), nil)
	if err != nil {
		return "", err
	}
	if session != "" {
		req.Header.Set("X-GT-Session", session)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.Header.Get("X-Gt-Backend"), fmt.Errorf("status %d", resp.StatusCode)
	}
	return resp.Header.Get("X-Gt-Backend"), nil
}

func postWithSession(url string, body any, session string) (http.Header, int) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, &buf)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-GT-Session", session)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID    int    `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, out.Error)
	}
	return resp.Header, out.ID
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func serve(s *server.Server) (string, func()) { return serveHandler(s.Handler()) }

func serveHandler(h http.Handler) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }
}
