// Study walks the §4.4.1 user-study pipeline end to end, at a reduced
// scale: recruit a participant pool, prune invalid registrations, form
// groups of target size and uniformity *from the pool* (not synthesized
// directly — exactly as the paper assembled groups from its 3000 crowd
// workers), build the six package variants, filter careless raters with
// the invalid-CI honeypot, and report a Table 4-style evaluation row.
package main

import (
	"fmt"
	"log"

	"grouptravel"
	"grouptravel/internal/consensus"
	"grouptravel/internal/dataset"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/sim"
	"grouptravel/internal/stats"
)

func main() {
	city, err := grouptravel.GenerateCity(dataset.TestSpec("Paris", 77))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := grouptravel.NewEngine(city)
	if err != nil {
		log.Fatal(err)
	}
	src := rng.New(2019)

	// Eq. 5 justified the paper's sample: with N = 200000 crowd workers,
	// 3% margin, 95% confidence, they needed at least 1062 participants.
	n, err := stats.SampleSize(200000, 0.03, stats.Z95, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eq. 5 sample size for the real study: %d participants\n", n)

	// Recruit (scaled down 10x here) and prune invalid registrations —
	// the paper retained 90.1% and 96.6% on its two platforms. Real crowd
	// pools contain taste *segments* (museum people, foodies, families),
	// so the simulated pool mixes like-minded personas with independents;
	// without segments no subset of independent raters reaches the
	// uniform band.
	poolSrc := src.Split("pool")
	var pool []*profile.Profile
	for persona := 0; persona < 20; persona++ {
		seg, err := profile.GenerateUniformGroup(city.Schema, 12, poolSrc.Split("persona"))
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, seg.Members...)
	}
	pool = append(pool, profile.GeneratePool(city.Schema, 60, poolSrc)...)
	recruited := len(pool)
	pruned := pool[:0]
	for i, p := range pool {
		if i%12 == 11 { // ~8% invalid emails/identifiers
			continue
		}
		pruned = append(pruned, p)
	}
	fmt.Printf("recruited %d simulated participants, retained %d after pruning\n",
		recruited, len(pruned))

	// Form a uniform group of 10 from the pool. Random dense profiles are
	// already fairly similar; the greedy pool search finds a like-minded
	// subset inside the band.
	group, err := profile.FormGroup(city.Schema, pruned, 10, profile.UniformBand, src.Split("form"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formed a group of %d with uniformity %.2f\n\n", group.Size(), group.Uniformity())

	// The six §4.4.3 package variants.
	params := grouptravel.DefaultParams(5)
	variants := map[string]*grouptravel.TravelPackage{}
	var legit []*grouptravel.TravelPackage
	for _, m := range consensus.Methods {
		gp, err := grouptravel.GroupProfile(group, m)
		if err != nil {
			log.Fatal(err)
		}
		tp, err := engine.Build(gp, grouptravel.DefaultQuery(), params)
		if err != nil {
			log.Fatal(err)
		}
		variants[m.Name] = tp
		legit = append(legit, tp)
	}
	nptp, err := engine.Build(nil, grouptravel.DefaultQuery(), params)
	if err != nil {
		log.Fatal(err)
	}
	variants["non-personalized"] = nptp
	legit = append(legit, nptp)
	random, err := engine.BuildRandom(grouptravel.DefaultQuery(), 5, 7)
	if err != nil {
		log.Fatal(err)
	}
	variants["random"] = random
	legit = append(legit, random)

	// Honeypot filter, then the independent evaluation.
	honeypot, err := engine.BuildHoneypot(grouptravel.DefaultQuery(), 5, 8)
	if err != nil {
		log.Fatal(err)
	}
	panel, err := sim.NewPanel(group, 0.066, src.Split("panel"))
	if err != nil {
		log.Fatal(err)
	}
	keep := panel.FilterByHoneypot(honeypot, legit)
	fmt.Printf("honeypot filter: retained %d of %d raters\n\n", len(keep), len(panel.Raters))

	scores := panel.IndependentEval(variants, keep)
	fmt.Println("independent evaluation (mean interest, 1-5):")
	order := []string{"random", "non-personalized",
		consensus.AveragePref.Name, consensus.LeastMisery.Name,
		consensus.PairwiseDis.Name, consensus.VarianceDis.Name}
	for _, name := range order {
		fmt.Printf("  %-24s %.2f\n", name, scores[name])
	}
}
