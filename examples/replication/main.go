// Replication walks the primary/standby pair end to end in one process:
// it starts a primary with a write-ahead log and a compaction threshold
// low enough to trip during the demo, mutates it (a group, a package,
// customization ops), then starts a follower replicating over HTTP — its
// first sync lands behind the compaction horizon, so it crosses via the
// snapshot handoff and tails plain log frames from there. The follower
// serves the same state read-only (mutations 403 with a pointer at the
// primary); when the primary "dies", promotion flips it into a full
// read-write server.
//
// The same flow with two real processes:
//
//	grouptravel-server -data-dir ./cities -snapshot-dir ./state-a -addr :8080
//	grouptravel-server -data-dir ./cities -snapshot-dir ./state-b -addr :8081 \
//	    -follow http://localhost:8080
//	curl -X POST http://localhost:8081/promote   # failover
//	grouptravel-server ... -follow http://localhost:8080 -promote  # failover at boot
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"grouptravel"
	"grouptravel/internal/dataset"
	"grouptravel/internal/server"
)

func main() {
	city, err := grouptravel.GenerateCity(dataset.TestSpec("Paris", 40))
	if err != nil {
		log.Fatal(err)
	}
	stateA, err := os.MkdirTemp("", "grouptravel-primary-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateA)
	stateB, err := os.MkdirTemp("", "grouptravel-follower-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateB)

	// 1. The primary: an ordinary server with persistence — its per-city
	// WAL is what followers tail. CompactEvery is tiny so the demo's
	// mutations trip a real compaction.
	primary, err := server.NewMultiCity(server.Options{
		Cities: []*dataset.City{city}, SnapshotDir: stateA, CompactEvery: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	primaryURL, stopPrimary := serve(primary)
	fmt.Println("primary on", primaryURL)

	// 2. Mutate it: a group, a package, two customization ops — four WAL
	// records, enough to trigger the background compaction.
	var cityInfo struct {
		Schema map[string][]string `json:"schema"`
	}
	getJSON(primaryURL+"/api/city", &cityInfo)
	members := []map[string][]float64{}
	for m := 0; m < 3; m++ {
		member := map[string][]float64{}
		for cat, labels := range cityInfo.Schema {
			v := make([]float64, len(labels))
			for j := range v {
				v[j] = float64((j + m) % 6)
			}
			member[cat] = v
		}
		members = append(members, member)
	}
	gid := post(primaryURL+"/api/groups", map[string]any{"members": members})
	pid := post(primaryURL+"/api/packages", map[string]any{"group": gid, "consensus": "pairwise", "k": 3})
	var pkg struct {
		Days []struct {
			Items []struct{ ID int }
		}
	}
	getJSON(fmt.Sprintf("%s/api/packages/%d", primaryURL, pid), &pkg)
	victim := pkg.Days[0].Items[0].ID
	post(fmt.Sprintf("%s/api/packages/%d/ops", primaryURL, pid),
		map[string]any{"member": 0, "op": "remove", "ci": 0, "poi": victim})
	post(fmt.Sprintf("%s/api/packages/%d/ops", primaryURL, pid),
		map[string]any{"member": 1, "op": "add", "ci": 0, "poi": victim})
	fmt.Printf("primary: group %d, package %d, 2 customization ops (4 WAL records)\n", gid, pid)
	waitForCompaction(primaryURL)
	fmt.Println("primary: log compacted into the snapshot (bytes-since-compaction reset)")

	// 3. The follower starts from nothing, *behind* the compaction
	// horizon: its first sync must cross via the snapshot handoff, then
	// it tails plain frames.
	follower, err := server.NewMultiCity(server.Options{
		Cities: []*dataset.City{city}, SnapshotDir: stateB,
		Follow: primaryURL, FollowPoll: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	followerURL, stopFollower := serve(follower)
	defer stopFollower()
	defer follower.Close()
	fmt.Println("follower on", followerURL, "replicating from the primary")
	if err := follower.Follower().CatchUp(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	lag, _ := follower.Follower().Lag("paris")
	fmt.Printf("follower: caught up at seq %d — %d snapshot handoff(s), replicaLag %d records / %d bytes\n",
		lag.AppliedSeq, lag.SnapshotHandoffs, lag.Records, lag.Bytes)

	// 4. Post-handoff mutations arrive as ordinary log frames.
	getJSON(fmt.Sprintf("%s/api/packages/%d", primaryURL, pid), &pkg)
	post(fmt.Sprintf("%s/api/packages/%d/ops", primaryURL, pid),
		map[string]any{"member": 2, "op": "remove", "ci": 1, "poi": pkg.Days[1].Items[0].ID})
	if err := follower.Follower().CatchUp(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	getJSON(fmt.Sprintf("%s/cities/paris/packages/%d", followerURL, pid), &pkg)
	fmt.Printf("follower: serves package %d with the replicated ops applied\n", pid)

	// 5. Writes are refused on the replica, with a pointer at the primary.
	resp, err := http.Post(followerURL+"/api/groups", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("follower: POST /api/groups -> %d (primary at %s)\n", resp.StatusCode, resp.Header.Get("X-GT-Primary"))

	// 6. Failover: the primary dies; promote the follower. It seals its
	// log and serves writes from the replicated state.
	stopPrimary()
	fmt.Println("primary stopped — promoting the follower")
	if err := follower.Promote(); err != nil {
		log.Fatal(err)
	}
	newPkg := post(followerURL+"/api/packages", map[string]any{"group": gid, "consensus": "avg", "k": 2})
	fmt.Printf("promoted follower: built package %d read-write (role %s)\n", newPkg, follower.Role())
}

// waitForCompaction polls /healthz until the city reports a compaction.
func waitForCompaction(base string) {
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		var health struct {
			Cities map[string]struct {
				WAL *struct {
					Compactions int64 `json:"compactions"`
				} `json:"wal"`
			} `json:"cities"`
		}
		getJSON(base+"/healthz", &health)
		if c := health.Cities["paris"]; c.WAL != nil && c.WAL.Compactions > 0 {
			return
		}
	}
	log.Fatal("compaction never ran")
}

// serve binds a server to a loopback port.
func serve(s *server.Server) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }
}

func post(url string, body any) int {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID    int    `json:"id"`
		Error string `json:"error"`
	}
	raw, _ := json.Marshal(body)
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatalf("POST %s %s: %v", url, raw, err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s %s: %d %s", url, raw, resp.StatusCode, out.Error)
	}
	return out.ID
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
