// Multicity walks the multi-city serving subsystem end to end in one
// process: it writes three city datasets into a data directory, starts a
// server capped at two resident cities with snapshots enabled, registers a
// group and builds a package in every city (forcing an LRU eviction along
// the way), then "restarts" — a second server over the same directories —
// and shows every city's groups and packages intact.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"grouptravel"
	"grouptravel/internal/dataset"
	"grouptravel/internal/server"
)

var cities = []string{"Paris", "Barcelona", "Rome"}

func main() {
	// 1. A data directory with three small cities (a real deployment
	// would point -data-dir at converted TourPedia dumps).
	dataDir, err := os.MkdirTemp("", "grouptravel-data-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	snapDir := filepath.Join(dataDir, "state")
	for i, name := range cities {
		city, err := grouptravel.GenerateCity(dataset.TestSpec(name, int64(40+i)))
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(filepath.Join(dataDir, key(name)+".json"))
		if err != nil {
			log.Fatal(err)
		}
		if err := city.SaveJSON(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
	fmt.Printf("data dir %s: %v\n", dataDir, cities)

	// 2. A server capped at 2 resident cities, persisting through snapDir.
	base, stop := serve(dataDir, snapDir)
	fmt.Println("server on", base, "(max 2 resident cities)")

	// 3. Register a group and build a package per city. Serving the third
	// city evicts the least-recently-used one; its snapshot carries the
	// state across the eviction.
	type created struct{ group, pkg int }
	state := map[string]created{}
	for _, name := range cities {
		k := key(name)
		var cityInfo struct {
			Schema map[string][]string `json:"schema"`
		}
		get(base+"/cities/"+k, &cityInfo)
		ratings := func(shift int) map[string][]float64 {
			out := map[string][]float64{}
			for cat, labels := range cityInfo.Schema {
				v := make([]float64, len(labels))
				for j := range v {
					v[j] = float64((j + shift) % 6)
				}
				out[cat] = v
			}
			return out
		}
		var group struct {
			ID int `json:"id"`
		}
		post(base+"/cities/"+k+"/groups", map[string]any{
			"members": []any{ratings(0), ratings(1), ratings(3)},
		}, &group)
		var pkg struct {
			ID   int   `json:"id"`
			Days []any `json:"days"`
		}
		post(base+"/cities/"+k+"/packages", map[string]any{
			"group": group.ID, "consensus": "pairwise", "k": 3,
		}, &pkg)
		state[k] = created{group: group.ID, pkg: pkg.ID}
		fmt.Printf("%-10s group %d, package %d with %d days\n", name+":", group.ID, pkg.ID, len(pkg.Days))
	}

	// 4. The health endpoint shows the registry honoring its cap and the
	// write-ahead persistence at work: each mutation appended one log
	// record; evicted cities were compacted (log folded into their
	// snapshot) on the way out.
	var health struct {
		Registry struct {
			Loaded    int   `json:"loaded"`
			Evictions int64 `json:"evictions"`
		} `json:"registry"`
		Cities map[string]struct {
			Packages int `json:"packages"`
			WAL      *struct {
				Records     int64 `json:"records"`
				Compactions int64 `json:"compactions"`
			} `json:"wal"`
		} `json:"cities"`
	}
	get(base+"/healthz", &health)
	fmt.Printf("registry: %d resident, %d evictions\n", health.Registry.Loaded, health.Registry.Evictions)
	for k, ch := range health.Cities {
		if ch.WAL != nil {
			fmt.Printf("  %-10s %d package(s), %d log record(s), %d compaction(s)\n",
				k+":", ch.Packages, ch.WAL.Records, ch.WAL.Compactions)
		} else {
			fmt.Printf("  %-10s %d package(s)\n", k+":", ch.Packages)
		}
	}

	// 5. Restart: a fresh server over the same directories reconstructs
	// everything from snapshots plus write-ahead-log suffixes.
	stop()
	base, stop = serve(dataDir, snapDir)
	defer stop()
	fmt.Println("restarted on", base)
	for _, name := range cities {
		k := key(name)
		var group struct {
			Size int `json:"size"`
		}
		get(fmt.Sprintf("%s/cities/%s/groups/%d", base, k, state[k].group), &group)
		var pkg struct {
			Valid bool  `json:"valid"`
			Days  []any `json:"days"`
		}
		get(fmt.Sprintf("%s/cities/%s/packages/%d", base, k, state[k].pkg), &pkg)
		fmt.Printf("%-10s group of %d and %d-day package survived the restart (valid=%v)\n",
			name+":", group.Size, len(pkg.Days), pkg.Valid)
	}
}

// key matches server.cityKey's derivation for preloaded cities.
func key(name string) string { return strings.ToLower(name) }

func serve(dataDir, snapDir string) (base string, stop func()) {
	srv, err := server.NewMultiCity(server.Options{
		DataDir:     dataDir,
		SnapshotDir: snapDir,
		MaxCities:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func post(url string, body, out any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
