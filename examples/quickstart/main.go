// Quickstart walks the Figure 2 flow of the paper end to end:
//
//	individual profiles ──consensus──▶ group profile ─┐
//	city POIs + group query ──────────────────────────┴─▶ travel package
//
// Two travelers rate POI types on the 0–5 scale of §2.2, their profiles
// are aggregated with a consensus function, and the engine builds a
// personalized 3-day package.
package main

import (
	"fmt"
	"log"

	"grouptravel"
	"grouptravel/internal/dataset"
	"grouptravel/internal/render"
)

func main() {
	// A small synthetic Paris (deterministic). Use grouptravel.NewCity for
	// the paper-scale eight TourPedia cities.
	city, err := grouptravel.GenerateCity(dataset.TestSpec("Paris", 1))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := grouptravel.NewEngine(city)
	if err != nil {
		log.Fatal(err)
	}

	// Rate what the schema offers: accommodation/transportation types are
	// fixed; restaurant/attraction dimensions are LDA topics labeled by
	// their representative tags.
	fmt.Println("attraction topics to rate:")
	for i, label := range city.Schema.Labels(grouptravel.Attr) {
		fmt.Printf("  %d: %s\n", i, label)
	}

	ratings := func(vals map[grouptravel.Category][]float64) *grouptravel.Profile {
		p, err := grouptravel.ProfileFromRatings(city.Schema, vals)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	// Alice: museums and fine dining; hates hostels.
	alice := ratings(map[grouptravel.Category][]float64{
		grouptravel.Acco:  {5, 0, 0, 3, 2, 1, 0, 0},
		grouptravel.Trans: {3, 4, 5, 1, 0, 2, 1, 0},
		grouptravel.Rest:  {2, 3, 5, 2, 0, 1},
		grouptravel.Attr:  {5, 2, 4, 1, 2, 3},
	})
	// Bob: parks, street food, bikes.
	bob := ratings(map[grouptravel.Category][]float64{
		grouptravel.Acco:  {2, 4, 1, 0, 3, 2, 1, 1},
		grouptravel.Trans: {1, 2, 3, 2, 0, 5, 0, 1},
		grouptravel.Rest:  {1, 2, 0, 3, 5, 2},
		grouptravel.Attr:  {1, 5, 2, 2, 1, 4},
	})

	group, err := grouptravel.NewGroup(city.Schema, []*grouptravel.Profile{alice, bob})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngroup uniformity: %.2f\n", group.Uniformity())

	// Aggregate with average preference + pair-wise disagreement (§2.3).
	gp, err := grouptravel.GroupProfile(group, grouptravel.PairwiseDis)
	if err != nil {
		log.Fatal(err)
	}

	tp, err := engine.Build(gp, grouptravel.DefaultQuery(), grouptravel.DefaultParams(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(render.Package(tp))
}
