// Crosscity reproduces the §4.4.4 robustness study: a group customizes a
// package in Paris, the interactions refine the group profile with both
// the individual and the batch strategy, and packages are then built in
// Barcelona from each refined profile (plus a non-personalized control).
// The comparison shows whether refinement carries across cities — the
// paper's test of profile "robustness".
package main

import (
	"fmt"
	"log"

	"grouptravel"
	"grouptravel/internal/dataset"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
	"grouptravel/internal/sim"
)

func main() {
	paris, err := grouptravel.GenerateCity(dataset.TestSpec("Paris", 11))
	if err != nil {
		log.Fatal(err)
	}
	spec := dataset.TestSpec("Barcelona", 12)
	spec.Center = grouptravel.Point{Lat: 41.3874, Lon: 2.1686}
	barcelona, err := grouptravel.GenerateCity(spec)
	if err != nil {
		log.Fatal(err)
	}
	parisEngine, err := grouptravel.NewEngine(paris)
	if err != nil {
		log.Fatal(err)
	}
	barcaEngine, err := grouptravel.NewEngine(barcelona)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's uniform study group has 11 members.
	group, err := profile.GenerateUniformGroup(paris.Schema, 11, rng.New(5))
	if err != nil {
		log.Fatal(err)
	}
	gp, err := grouptravel.GroupProfile(group, grouptravel.PairwiseDis)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: personalized package in Paris.
	parisTP, err := parisEngine.Build(gp, grouptravel.DefaultQuery(), grouptravel.DefaultParams(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Paris package built: %d CIs, mean member utility %.3f\n",
		len(parisTP.CIs), meanUtility(group, parisTP))

	// Step 2: every member interacts with it (simulated §3.3 behaviour).
	sess, err := grouptravel.NewSession(paris, parisTP)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.SimulateCustomization(sess, group, sim.DefaultCustomizeOptions(), rng.New(6)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customization session: %d operations by %d members\n",
		len(sess.Log()), group.Size())

	// Step 3: refine the group profile, both strategies.
	batchGP, err := grouptravel.RefineBatch(gp, sess.Log())
	if err != nil {
		log.Fatal(err)
	}
	_, indivGP, err := grouptravel.RefineIndividual(group, grouptravel.PairwiseDis, sess.Log())
	if err != nil {
		log.Fatal(err)
	}

	// Step 4: rebuild in Barcelona — the cross-city robustness test.
	params := grouptravel.DefaultParams(5)
	build := func(p *grouptravel.Profile) *grouptravel.TravelPackage {
		tp, err := barcaEngine.Build(p, grouptravel.DefaultQuery(), params)
		if err != nil {
			log.Fatal(err)
		}
		return tp
	}
	results := []struct {
		name string
		tp   *grouptravel.TravelPackage
	}{
		{"batch-refined", build(batchGP)},
		{"individual-refined", build(indivGP)},
		{"non-personalized", build(nil)},
		{"unrefined profile", build(gp)},
	}
	fmt.Println("\nBarcelona packages (mean member utility — higher is better):")
	for _, r := range results {
		fmt.Printf("  %-20s %.3f\n", r.name, meanUtility(group, r.tp))
	}
	fmt.Println("\nThe refined profiles transfer because topic spaces are aligned across")
	fmt.Println("cities (see internal/dataset: topic-theme alignment).")
}

func meanUtility(g *profile.Group, tp *grouptravel.TravelPackage) float64 {
	s := 0.0
	for _, m := range g.Members {
		s += sim.Utility(m, tp)
	}
	return s / float64(g.Size())
}
