// Customize reproduces the Figure 3 scenario: a group receives a package
// and refines it with the four §3.3 operators —
//
//	REMOVE(T, CI)                     drop a transportation stop
//	ADD("Tour Montparnasse", CI)      add a chosen attraction
//	REPLACE(H, CI)                    the system recommends the closest swap
//	GENERATE(RECTANGLE(x, y, w, h))   build a new CI inside a map area
//
// and shows how the interactions refine the group profile (batch
// strategy) so the next build fits better.
package main

import (
	"fmt"
	"log"

	"grouptravel"
	"grouptravel/internal/dataset"
	"grouptravel/internal/geo"
	"grouptravel/internal/profile"
	"grouptravel/internal/render"
	"grouptravel/internal/rng"
	"grouptravel/internal/sim"
)

func main() {
	city, err := grouptravel.GenerateCity(dataset.TestSpec("Paris", 7))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := grouptravel.NewEngine(city)
	if err != nil {
		log.Fatal(err)
	}
	group, err := profile.GenerateUniformGroup(city.Schema, 4, rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	gp, err := grouptravel.GroupProfile(group, grouptravel.PairwiseDis)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := engine.Build(gp, grouptravel.DefaultQuery(), grouptravel.DefaultParams(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== generated package ===")
	fmt.Print(render.Package(tp))

	sess, err := grouptravel.NewSession(city, tp)
	if err != nil {
		log.Fatal(err)
	}

	// REMOVE: member 0 drops the transportation stop of day 1.
	var transID int
	for _, it := range sess.Package().CIs[0].Items {
		if it.Cat == grouptravel.Trans {
			transID = it.ID
			break
		}
	}
	if err := sess.Remove(0, 0, transID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nREMOVE: member 0 removed transportation POI %d from CI 1\n", transID)

	// ADD: member 1 browses the closest attractions and adds the top one.
	cands, err := sess.AddCandidates(0, grouptravel.Attr, "", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nADD: closest attraction candidates near CI 1:")
	for _, c := range cands {
		fmt.Printf("  %-28s %-10s %s\n", c.Name, c.Type, c.Coord)
	}
	if err := sess.Add(1, 0, cands[0].ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member 1 added %q\n", cands[0].Name)

	// REPLACE: member 2 swaps the day-2 restaurant; the system recommends
	// the geographically closest same-category POI.
	var restID int
	var restName string
	for _, it := range sess.Package().CIs[1].Items {
		if it.Cat == grouptravel.Rest {
			restID, restName = it.ID, it.Name
			break
		}
	}
	repl, err := sess.Replace(2, 1, restID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nREPLACE: member 2 replaced %q — the system suggests %q (%.0f m away)\n",
		restName, repl.Name, 1000*distKm(city, restID, repl.ID))

	// GENERATE: member 3 draws a rectangle over the city center and gets a
	// brand-new valid, cohesive CI there.
	b := city.POIs.Bounds()
	rect := grouptravel.Rect{
		Lat: b.Lat - b.Height*0.3, Lon: b.Lon + b.Width*0.3,
		Width: b.Width * 0.4, Height: b.Height * 0.4,
	}
	newCI, err := sess.Generate(3, rect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGENERATE: member 3 drew a rectangle; new CI with %d POIs centered at %s\n",
		len(newCI.Items), newCI.Centroid)

	// Refine the group profile from the session log (batch strategy) and
	// rebuild: the next package reflects the implicit feedback.
	refined, err := grouptravel.RefineBatch(gp, sess.Log())
	if err != nil {
		log.Fatal(err)
	}
	rebuilt, err := engine.Build(refined, grouptravel.DefaultQuery(), grouptravel.DefaultParams(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== after %d interactions, profile refined (batch) — fit before/after ===\n", len(sess.Log()))
	before, after := meanUtility(group, tp), meanUtility(group, rebuilt)
	fmt.Printf("mean member utility: %.3f -> %.3f\n", before, after)
	fmt.Println("\n=== rebuilt package ===")
	fmt.Print(render.Package(rebuilt))
}

func distKm(city *grouptravel.City, a, b int) float64 {
	pa, pb := city.POIs.ByID(a), city.POIs.ByID(b)
	if pa == nil || pb == nil {
		return 0
	}
	return geo.Equirectangular(pa.Coord, pb.Coord)
}

func meanUtility(g *profile.Group, tp *grouptravel.TravelPackage) float64 {
	s := 0.0
	for _, m := range g.Members {
		s += sim.Utility(m, tp)
	}
	return s / float64(g.Size())
}
