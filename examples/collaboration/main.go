// Collaboration demonstrates the §6 future-work collaboration models
// implemented in internal/collab: the same set of member requests routed
// through the star (moderated), sequential (pipeline) and hybrid
// (parallel, majority-vote) models, showing how each model disposes of
// conflicting customization requests.
package main

import (
	"fmt"
	"log"

	"grouptravel"
	"grouptravel/internal/collab"
	"grouptravel/internal/dataset"
	"grouptravel/internal/interact"
	"grouptravel/internal/profile"
	"grouptravel/internal/rng"
)

func main() {
	city, err := grouptravel.GenerateCity(dataset.TestSpec("Paris", 21))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := grouptravel.NewEngine(city)
	if err != nil {
		log.Fatal(err)
	}
	group, err := profile.GenerateUniformGroup(city.Schema, 4, rng.New(9))
	if err != nil {
		log.Fatal(err)
	}
	gp, err := grouptravel.GroupProfile(group, grouptravel.PairwiseDis)
	if err != nil {
		log.Fatal(err)
	}

	// Fresh identical sessions for each collaboration model.
	newSession := func() *grouptravel.Session {
		tp, err := engine.Build(gp, grouptravel.DefaultQuery(), grouptravel.DefaultParams(3))
		if err != nil {
			log.Fatal(err)
		}
		s, err := grouptravel.NewSession(city, tp)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	// The contested request set: members 1 and 3 want the day-1 restaurant
	// gone, member 2 wants it replaced, and member 0 wants an extra
	// attraction.
	proto := newSession()
	var restID int
	for _, it := range proto.Package().CIs[0].Items {
		if it.Cat == grouptravel.Rest {
			restID = it.ID
			break
		}
	}
	cands, err := proto.AddCandidates(0, grouptravel.Attr, "", 1)
	if err != nil || len(cands) == 0 {
		log.Fatal("no add candidate")
	}
	requests := []collab.Request{
		{Member: 1, Kind: interact.OpRemove, CIIndex: 0, POIID: restID},
		{Member: 2, Kind: interact.OpReplace, CIIndex: 0, POIID: restID},
		{Member: 3, Kind: interact.OpRemove, CIIndex: 0, POIID: restID},
		{Member: 0, Kind: interact.OpAdd, CIIndex: 0, POIID: cands[0].ID},
	}
	fmt.Println("requests:")
	for _, r := range requests {
		fmt.Println("  ", r)
	}

	report := func(name string, outcomes []collab.Outcome) {
		fmt.Printf("\n=== %s ===\n", name)
		for _, o := range outcomes {
			if o.Reason != "" {
				fmt.Printf("  %-9s %s (%s)\n", o.Decision, o.Request, o.Reason)
			} else {
				fmt.Printf("  %-9s %s\n", o.Decision, o.Request)
			}
		}
	}

	// Star: member 0 moderates with their own taste (vetoes removals of
	// POIs they love, additions they dislike).
	star := newSession()
	policy := collab.ModeratorTaste(group.Members[0], 0.15, 0.85)
	outcomes, err := collab.RunStar(star, policy, requests)
	if err != nil {
		log.Fatal(err)
	}
	report("star model (member 0 moderates)", outcomes)

	// Sequential: turns in order 3 → 2 → 1 → 0; later members see earlier
	// members' changes (member 2's REPLACE fails if 3's REMOVE ran first).
	seq := newSession()
	outcomes, err = collab.RunSequential(seq, []int{3, 2, 1, 0}, requests)
	if err != nil {
		log.Fatal(err)
	}
	report("sequential model (3 -> 2 -> 1 -> 0)", outcomes)

	// Hybrid: all requests in parallel; REMOVE wins the 2-vs-1 vote over
	// REPLACE on the contested restaurant.
	hyb := newSession()
	outcomes, err = collab.RunHybrid(hyb, requests)
	if err != nil {
		log.Fatal(err)
	}
	report("hybrid model (parallel, majority vote)", outcomes)
}
