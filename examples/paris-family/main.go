// Paris-family reproduces the scenario of the paper's Figure 1 and the
// §2.3 worked example: a family of four (father, mother, teenager, kid)
// requests a 5-day Paris package where every day bundles one
// accommodation, one transportation, one restaurant and three attractions
// under a daily budget.
//
// The §2.3 example gives the family's museum preferences as 0.8 / 1.0 /
// 0.6 / 0.2 — reproduced here on the museum topic — and compares all four
// consensus methods on the resulting packages.
package main

import (
	"fmt"
	"log"

	"grouptravel"
	"grouptravel/internal/dataset"
	"grouptravel/internal/render"
	"grouptravel/internal/vec"
)

func main() {
	city, err := grouptravel.GenerateCity(dataset.TestSpec("Paris", 42))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := grouptravel.NewEngine(city)
	if err != nil {
		log.Fatal(err)
	}

	// Build the four member profiles. The museum topic is the attraction
	// dimension aligned with the "art gallery, museum, library" theme
	// (index 0 after theme alignment); the §2.3 preferences 0.8, 1.0,
	// 0.6, 0.2 go there.
	museum := 0
	fmt.Printf("museum topic: %s\n\n", city.Schema.Labels(grouptravel.Attr)[museum])
	family := make([]*grouptravel.Profile, 0, 4)
	museumPrefs := []float64{0.8, 1.0, 0.6, 0.2} // father, mother, teenager, kid
	for i, pref := range museumPrefs {
		p := grouptravel.NewProfile(city.Schema)
		attr := vec.New(city.Schema.Dim(grouptravel.Attr))
		attr[museum] = pref
		attr[(museum+1)%len(attr)] = 0.3 // everyone tolerates parks a bit
		if err := p.SetVector(grouptravel.Attr, attr); err != nil {
			log.Fatal(err)
		}
		// Shared, mild preferences in the other categories.
		acco := vec.New(city.Schema.Dim(grouptravel.Acco))
		acco[0] = 0.8 // hotels
		_ = p.SetVector(grouptravel.Acco, acco)
		rest := vec.New(city.Schema.Dim(grouptravel.Rest))
		rest[3] = 0.6 // cafés
		rest[4] = 0.3 + 0.1*float64(i%2)
		_ = p.SetVector(grouptravel.Rest, rest)
		family = append(family, p)
	}
	group, err := grouptravel.NewGroup(city.Schema, family)
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 1 query: ⟨1 acco, 1 trans, 1 rest, 3 attr, budget⟩.
	// TourPedia costs are log(#checkins) (≈ 0.3–4 per POI), so the $100
	// of the figure maps to a per-day cap of 9 cost units here.
	q, err := grouptravel.NewQuery(1, 1, 1, 3, 9)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== consensus method comparison (§2.3 family) ===")
	for _, method := range grouptravel.ConsensusMethods {
		gp, err := grouptravel.GroupProfile(group, method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-24s museum consensus g = %.3f\n",
			method.Name, gp.Vector(grouptravel.Attr)[museum])
		tp, err := engine.Build(gp, q, grouptravel.DefaultParams(5))
		if err != nil {
			log.Fatal(err)
		}
		d := tp.Measure()
		museums := 0
		for _, ci := range tp.CIs {
			for _, it := range ci.Items {
				if it.Cat == grouptravel.Attr && it.Vector[museum] > 0.35 {
					museums++
				}
			}
		}
		fmt.Printf("%-24s representativity=%.1f km, within-CI distance=%.1f km, personalization=%.1f | museum-leaning attractions: %d/15\n",
			"", d.Representativity, d.RawDistance, d.Personalization, museums)
	}

	// Full Figure 1 rendering for the disagreement-based package, which
	// §4.4.2 finds best for mixed groups like this family.
	gp, err := grouptravel.GroupProfile(group, grouptravel.PairwiseDis)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := engine.Build(gp, q, grouptravel.DefaultParams(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== the 5-day package (Figure 1) ===")
	fmt.Print(render.Package(tp))
	fmt.Println()
	fmt.Print(render.Map(tp, city.POIs.Bounds(), city.POIs.All(), 72))
}
