# GroupTravel build/test entry points. `make ci` is what a CI runner (or a
# reviewer) should run: vet + build + race-enabled tests.

GO ?= go

.PHONY: all build vet test race lint bench benchfull benchcompare loadgen-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -race covers every package, which pointedly includes the replication
# suite (internal/server/replication_test.go, internal/replicate) and
# the front-tier routing suite (internal/router): the replication
# convergence test runs a concurrent workload against a live tailer, and
# TestRouterReadYourWritesUnderLag drives concurrent clients through the
# router over a primary plus two lagging followers — exactly the kind of
# code the race detector exists for.
race:
	$(GO) test -race ./...

# Static analysis beyond vet: staticcheck and govulncheck run when they
# are installed (CI images, developer machines with the tools), and are
# skipped — loudly — when not, so `make lint` never depends on network
# access to fetch a binary.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed; skipped"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed; skipped"; fi

# Smoke check: run every Benchmark* a handful of times so the bench
# harness (package-build scaling, server + multi-city throughput,
# log-shipping apply rate, paper tables) cannot bit-rot unnoticed, and
# convert the output into the machine-readable BENCH_$(BENCH_GEN).json
# trajectory file (benchmark -> ns/op, B/op, allocs/op, stamped with
# commit/date/go version). 3 iterations, not 1: a single iteration
# records cold caches and makes the recorded number useless as a
# baseline. `make benchfull` takes real measurements and rewrites the
# same file. `make benchcompare` gates the fresh file against the
# previous generation's committed baseline: drift beyond 15% is printed
# as a warning (smoke runs are noisy), growth beyond 2x fails.
BENCH_GEN ?= 10
BENCH_BASE ?= BENCH_9.json

# Micro benchmarks first (benchjson rewrites the file), then the macro
# load generator merges its per-class latency/throughput results under
# the file's "macro" key — benchjson compare ignores non-Benchmark keys,
# so the trajectory file carries both without confusing the gate.
bench:
	$(GO) test -bench . -benchtime=3x -benchmem -run XXX . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/benchjson -o BENCH_$(BENCH_GEN).json < bench.out
	@rm -f bench.out
	$(GO) run ./cmd/grouptravel-loadgen -duration 10s -out BENCH_$(BENCH_GEN).json

benchfull:
	$(GO) test -bench . -benchmem -run XXX . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) run ./cmd/benchjson -o BENCH_$(BENCH_GEN).json < bench.out
	@rm -f bench.out
	$(GO) run ./cmd/grouptravel-loadgen -duration 30s -out BENCH_$(BENCH_GEN).json

# 5-second macro smoke: boots the full in-process topology (primary,
# streaming follower, edge-cached router), drives the persona mix, and
# fails on any real error rate — the load generator itself cannot
# bit-rot unnoticed.
loadgen-smoke:
	$(GO) run ./cmd/grouptravel-loadgen -duration 5s -rate 60 -cities 2

benchcompare:
	-$(GO) run ./cmd/benchjson -compare -tolerance 15 $(BENCH_BASE) BENCH_$(BENCH_GEN).json
	$(GO) run ./cmd/benchjson -compare -tolerance 100 $(BENCH_BASE) BENCH_$(BENCH_GEN).json

ci: lint build race
