# GroupTravel build/test entry points. `make ci` is what a CI runner (or a
# reviewer) should run: vet + build + race-enabled tests.

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The bench trajectory: package-build scaling, server throughput and the
# paper-table harness at reduced scale.
bench:
	$(GO) test -bench . -benchmem -run XXX .

ci: vet build race
